"""The authentication server and its enrollment database.

Ties the pieces of :mod:`repro.core` into the deployment objects a
system integrator would use: an :class:`AuthenticationServer` that
stores :class:`~repro.core.enrollment.EnrollmentRecord` entries (delay
parameters + thresholds -- not CRP tables) and runs Fig.-7 sessions,
and a :class:`ModelResponder` adapter that lets an attacker's learned
model masquerade as a device, for security evaluations.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.authentication import (
    AuthResult,
    DeviceReadError,
    Responder,
    ZERO_HAMMING_DISTANCE,
    authenticate,
)
from repro.core.enrollment import EnrollmentRecord, enroll_chip
from repro.core.selection import ChallengeSelector
from repro.crp.transform import parity_features
from repro.silicon.chip import PufChip
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.rng import SeedLike, derive_generator

__all__ = [
    "AuthenticationServer",
    "IdentificationResult",
    "ModelResponder",
    "UnknownChipError",
]


class UnknownChipError(KeyError):
    """Raised for authentication attempts against an unenrolled identity."""


class AuthenticationServer:
    """Server-side database and protocol driver.

    Parameters
    ----------
    records:
        Optional initial ``chip_id -> EnrollmentRecord`` mapping.
    """

    def __init__(self, records: Optional[Mapping[str, EnrollmentRecord]] = None) -> None:
        self._records: Dict[str, EnrollmentRecord] = dict(records or {})
        self._selectors: Dict[str, ChallengeSelector] = {}

    # ------------------------------------------------------------------
    # Database management
    # ------------------------------------------------------------------
    @property
    def enrolled_ids(self) -> list[str]:
        """Identifiers of all enrolled chips."""
        return sorted(self._records)

    def record(self, chip_id: str) -> EnrollmentRecord:
        """The stored record for *chip_id*."""
        try:
            return self._records[chip_id]
        except KeyError:
            raise UnknownChipError(
                f"chip {chip_id!r} is not enrolled; known: {self.enrolled_ids}"
            ) from None

    def register(self, record: EnrollmentRecord) -> None:
        """Store (or replace) an enrollment record."""
        self._records[record.chip_id] = record
        self._selectors.pop(record.chip_id, None)

    def enroll(self, chip: PufChip, seed: SeedLike = None, **kwargs) -> EnrollmentRecord:
        """Enroll *chip* (see :func:`repro.core.enrollment.enroll_chip`)
        and store the record."""
        record = enroll_chip(chip, seed=seed, **kwargs)
        self.register(record)
        return record

    def selector(self, chip_id: str) -> ChallengeSelector:
        """Cached challenge selector for one identity."""
        if chip_id not in self._selectors:
            self._selectors[chip_id] = self.record(chip_id).selector()
        return self._selectors[chip_id]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_database(self, directory) -> None:
        """Write every enrollment record into *directory* (one .npz each).

        File names are derived from chip ids; ids must therefore be
        filesystem-safe (the library's ``chip-N`` convention is).
        """
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for chip_id, record in self._records.items():
            record.save(directory / f"{chip_id}.npz")

    @classmethod
    def load_database(cls, directory) -> "AuthenticationServer":
        """Rebuild a server from a :meth:`save_database` directory."""
        from pathlib import Path

        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"no database directory at {directory}")
        records = {}
        for path in sorted(directory.glob("*.npz")):
            record = EnrollmentRecord.load(path)
            records[record.chip_id] = record
        return cls(records)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def authenticate(
        self,
        responder: Responder,
        *,
        claimed_id: Optional[str] = None,
        n_challenges: int = 64,
        tolerance: int = ZERO_HAMMING_DISTANCE,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: SeedLike = None,
        max_attempts: int = 1,
        retry_delay: float = 0.0,
    ) -> AuthResult:
        """Authenticate *responder* against a claimed identity.

        ``claimed_id`` defaults to the responder's own ``chip_id``
        attribute (the honest case); pass a different id to model an
        impostor presenting someone else's identity.

        Transient device failures
        -------------------------
        When *max_attempts* is above 1, a session aborted by a
        :class:`~repro.core.authentication.DeviceReadError` is retried
        with a **fresh** selected challenge set (each attempt derives an
        independent selection stream).  The same challenges are never
        re-sent: repeated or partial transcripts are exactly what
        chosen-challenge attacks harvest, so transcripts stay one-shot
        per the zero-HD protocol.  Attempts are bounded; the last
        failure propagates.  *retry_delay* seconds (doubling per
        attempt) separate retries.
        """
        if claimed_id is None:
            claimed_id = getattr(responder, "chip_id", None)
            if claimed_id is None:
                raise ValueError(
                    "responder has no chip_id attribute; pass claimed_id explicitly"
                )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        selector = self.selector(claimed_id)
        for attempt in range(max_attempts):
            # Attempt 0 keeps the historical seed derivation so existing
            # experiments reproduce bit-for-bit; later attempts extend
            # the key path, giving an independent (never replayed)
            # challenge draw.
            if attempt == 0:
                session_seed = derive_generator(seed, "auth", claimed_id)
            else:
                session_seed = derive_generator(
                    seed, "auth", claimed_id, "retry", attempt
                )
            try:
                result = authenticate(
                    responder,
                    selector,
                    n_challenges,
                    tolerance=tolerance,
                    condition=condition,
                    seed=session_seed,
                )
            except DeviceReadError:
                if attempt + 1 >= max_attempts:
                    raise
                if retry_delay > 0:
                    time.sleep(retry_delay * 2**attempt)
                continue
            return dataclasses.replace(result, attempts=attempt + 1)
        raise AssertionError("unreachable")  # pragma: no cover

    def identify(
        self,
        responder: Responder,
        *,
        n_challenges: int = 64,
        min_match_fraction: float = 0.95,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: SeedLike = None,
    ) -> IdentificationResult:
        """1:N identification: which enrolled chip is this device?

        Runs one selected-challenge block per enrolled identity (each
        identity's own models pick its challenges) and scores the
        device's answers against each prediction.  The genuine chip
        matches its own record perfectly; every other record sees a
        ~50 % coin-flip agreement, so the gap is unambiguous whenever
        ``n_challenges`` is more than a few dozen.

        Returns an :class:`IdentificationResult`; ``chip_id`` is
        ``None`` when no identity clears *min_match_fraction* (an
        unenrolled or heavily degraded device).  Ties are deterministic:
        when two identities score identically, the lexicographically
        lowest chip id wins.
        """
        if not self._records:
            raise UnknownChipError("no identities enrolled")
        ids = self.enrolled_ids
        blocks = [
            self.selector(chip_id).select(
                n_challenges, derive_generator(seed, "identify", chip_id)
            )
            for chip_id in ids
        ]
        # One stacked responder query plus one vectorized comparison for
        # all identities.  Scores are bit-identical to the per-identity
        # loop: each identity's selection generator is unchanged, and a
        # numpy Generator fills a concatenated noise array with exactly
        # the values the per-block calls would have drawn in sequence.
        stacked = np.concatenate([challenges for challenges, _ in blocks])
        predicted = np.stack([predicted for _, predicted in blocks])
        responses = np.asarray(responder.xor_response(stacked, condition))
        responses = responses.reshape(len(ids), n_challenges)
        match = (responses == predicted).mean(axis=1)
        scores: Dict[str, float] = {
            chip_id: float(value) for chip_id, value in zip(ids, match)
        }
        # Explicit deterministic tie-break: highest score, then lowest
        # chip id (not whatever order the score dict happens to hold).
        best_id = min(ids, key=lambda chip_id: (-scores[chip_id], chip_id))
        best_score = scores[best_id]
        return IdentificationResult(
            chip_id=best_id if best_score >= min_match_fraction else None,
            match_fraction=best_score,
            scores=scores,
        )


@dataclasses.dataclass(frozen=True)
class IdentificationResult:
    """Outcome of a 1:N identification sweep.

    Attributes
    ----------
    chip_id:
        Best-matching enrolled identity, or ``None`` if nothing cleared
        the match threshold.
    match_fraction:
        Per-challenge agreement of the best candidate.
    scores:
        ``chip_id -> match fraction`` for every enrolled identity.
    """

    chip_id: Optional[str]
    match_fraction: float
    scores: Dict[str, float]


class ModelResponder:
    """Adapter: answer challenges from an attacker's learned model.

    Wraps any estimator with a ``predict(features)`` method (an MLP or
    logistic attack) so it can be driven through the authentication
    protocol -- the paper's security claim is precisely that such a
    responder should fail against a >= 10-XOR PUF.
    """

    def __init__(self, model, chip_id: str = "attacker") -> None:
        if not hasattr(model, "predict"):
            raise TypeError("model must expose a predict(features) method")
        self._model = model
        self.chip_id = chip_id

    def xor_response(
        self,
        challenges: np.ndarray,
        condition: OperatingCondition = NOMINAL_CONDITION,
    ) -> np.ndarray:
        """Model predictions in place of silicon responses.

        The operating condition is ignored: a software clone has no
        physics.
        """
        return np.asarray(self._model.predict(parity_features(challenges)))

"""The authentication server and its enrollment database.

Ties the pieces of :mod:`repro.core` into the deployment objects a
system integrator would use: an :class:`AuthenticationServer` that
stores :class:`~repro.core.enrollment.EnrollmentRecord` entries (delay
parameters + thresholds -- not CRP tables) and runs Fig.-7 sessions,
and a :class:`ModelResponder` adapter that lets an attacker's learned
model masquerade as a device, for security evaluations.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.adjustment import BetaFactors
from repro.core.authentication import (
    AuthResult,
    DeviceReadError,
    Responder,
    ZERO_HAMMING_DISTANCE,
    authenticate,
)
from repro.core.codebook import (
    IdentificationCodebook,
    _packed_distances,
    pack_responses,
)
from repro.core.enrollment import EnrollmentRecord, enroll_chip
from repro.core.selection import ChallengeSelector
from repro.crp.transform import ParityFeatureCache, parity_features
from repro.silicon.chip import PufChip
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.rng import SeedLike, derive_generator

__all__ = [
    "AuthenticationServer",
    "IdentificationResult",
    "ModelResponder",
    "UnknownChipError",
]

#: File-name prefix of non-record artefacts inside a database directory
#: (codebooks); :meth:`AuthenticationServer.load_database` skips these
#: when collecting enrollment records.
_CODEBOOK_PREFIX = "_codebook_"


class UnknownChipError(KeyError):
    """Raised for authentication attempts against an unenrolled identity."""


class AuthenticationServer:
    """Server-side database and protocol driver.

    Parameters
    ----------
    records:
        Optional initial ``chip_id -> EnrollmentRecord`` mapping.
    """

    def __init__(self, records: Optional[Mapping[str, EnrollmentRecord]] = None) -> None:
        self._records: Dict[str, EnrollmentRecord] = dict(records or {})
        self._selectors: Dict[str, ChallengeSelector] = {}
        self._feature_cache = ParityFeatureCache()
        self._codebooks: Dict[int, IdentificationCodebook] = {}
        self._sorted_ids: Optional[List[str]] = None
        self._epoch = 0

    # ------------------------------------------------------------------
    # Database management
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotone database version; bumped on every mutation.

        Codebooks and batched callers compare this against the epoch
        they last synced at: equal means every cached artefact is
        current, no fingerprint sweep needed.
        """
        return self._epoch

    @property
    def enrolled_ids(self) -> list[str]:
        """Identifiers of all enrolled chips (cached between mutations)."""
        if self._sorted_ids is None:
            self._sorted_ids = sorted(self._records)
        return list(self._sorted_ids)

    def record(self, chip_id: str) -> EnrollmentRecord:
        """The stored record for *chip_id*."""
        try:
            return self._records[chip_id]
        except KeyError:
            raise UnknownChipError(
                f"chip {chip_id!r} is not enrolled; known: {self.enrolled_ids}"
            ) from None

    def register(self, record: EnrollmentRecord) -> None:
        """Store (or replace) an enrollment record.

        Bumps the database epoch: cached sorted ids and the chip's
        selector are dropped eagerly, codebook rows are revalidated
        lazily (at the next identification against them).
        """
        self._records[record.chip_id] = record
        self._selectors.pop(record.chip_id, None)
        self._sorted_ids = None
        self._epoch += 1

    def retighten(
        self, chip_id: str, beta0: float = 0.25, beta1: float = 2.2
    ) -> EnrollmentRecord:
        """Tighten *chip_id*'s selection thresholds by scaling its betas.

        The paper's threshold adjustment is multiplicative
        (:meth:`~repro.core.thresholds.ThresholdPair.scale`), so
        re-tightening composes into the stored
        :class:`~repro.core.adjustment.BetaFactors` -- the updated
        record persists, round-trips through ``save_database``, and its
        changed fingerprint invalidates exactly this chip's codebook
        rows.  The defaults match the serving layer's rung-2 ladder
        step (see :class:`repro.service.ServiceConfig`).
        """
        record = self.record(chip_id)
        updated = record.with_betas(
            BetaFactors(record.betas.beta0 * beta0, record.betas.beta1 * beta1)
        )
        self.register(updated)
        return updated

    def enroll(self, chip: PufChip, seed: SeedLike = None, **kwargs) -> EnrollmentRecord:
        """Enroll *chip* (see :func:`repro.core.enrollment.enroll_chip`)
        and store the record."""
        record = enroll_chip(chip, seed=seed, **kwargs)
        self.register(record)
        return record

    @property
    def feature_cache_stats(self) -> dict:
        """Counter snapshot of the shared parity-feature cache.

        All of the server's selectors share one
        :class:`~repro.crp.transform.ParityFeatureCache`; its
        hits/misses/evictions (see
        :meth:`~repro.crp.transform.ParityFeatureCache.stats`) say how
        much transform work the serving layer is actually skipping --
        the number the audit/summary outputs surface.
        """
        return self._feature_cache.stats()

    def selector(self, chip_id: str) -> ChallengeSelector:
        """Cached challenge selector for one identity.

        All of a server's selectors share one parity-feature cache, so
        re-derived deterministic challenge batches (identification
        streams, repeated sessions) skip the transform entirely.
        """
        if chip_id not in self._selectors:
            self._selectors[chip_id] = self.record(chip_id).selector(
                feature_cache=self._feature_cache
            )
        return self._selectors[chip_id]

    def codebook(
        self, n_challenges: int = 64, *, seed: Optional[int] = None
    ) -> IdentificationCodebook:
        """The synced identification codebook for *n_challenges*.

        Created on first use (with *seed* fixing the per-identity
        selection streams) and cached per block length; stale rows --
        anything registered or re-tightened since the last sync -- are
        rebuilt here, lazily, before the codebook is returned.
        """
        if not self._records:
            raise UnknownChipError("no identities enrolled")
        book = self._codebooks.get(n_challenges)
        if book is None:
            book = IdentificationCodebook(n_challenges, seed=seed)
            self._codebooks[n_challenges] = book
        if book.synced_epoch != self._epoch:
            book.sync(self._records, self.selector, epoch=self._epoch)
        return book

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_database(self, directory) -> None:
        """Write every enrollment record into *directory* (one .npz each).

        File names are derived from chip ids; ids must therefore be
        filesystem-safe (the library's ``chip-N`` convention is).
        Built identification codebooks are persisted alongside the
        records (one ``_codebook_<n>.npz`` per block length), so a
        reloaded server identifies without re-running any selection.
        """
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for chip_id, record in self._records.items():
            record.save(directory / f"{chip_id}.npz")
        for n_challenges, book in self._codebooks.items():
            if len(book) == 0:
                continue
            # Persist current rows only; a stale codebook is synced
            # first so the saved artefact matches the saved records.
            if book.synced_epoch != self._epoch:
                book.sync(self._records, self.selector, epoch=self._epoch)
            book.save(directory / f"{_CODEBOOK_PREFIX}{n_challenges}.npz")

    @classmethod
    def load_database(cls, directory) -> "AuthenticationServer":
        """Rebuild a server from a :meth:`save_database` directory.

        Persisted codebooks are loaded as-is and validated lazily: each
        row carries the fingerprint of the record it was built from, so
        rows whose records changed (or vanished) since the save are
        rebuilt on the next identification instead of being trusted.
        """
        from pathlib import Path

        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"no database directory at {directory}")
        records = {}
        codebooks: Dict[int, IdentificationCodebook] = {}
        for path in sorted(directory.glob("*.npz")):
            if path.name.startswith(_CODEBOOK_PREFIX):
                book = IdentificationCodebook.load(path)
                codebooks[book.n_challenges] = book
                continue
            record = EnrollmentRecord.load(path)
            records[record.chip_id] = record
        server = cls(records)
        server._codebooks.update(codebooks)
        return server

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def authenticate(
        self,
        responder: Responder,
        *,
        claimed_id: Optional[str] = None,
        n_challenges: int = 64,
        tolerance: int = ZERO_HAMMING_DISTANCE,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: SeedLike = None,
        max_attempts: int = 1,
        retry_delay: float = 0.0,
    ) -> AuthResult:
        """Authenticate *responder* against a claimed identity.

        ``claimed_id`` defaults to the responder's own ``chip_id``
        attribute (the honest case); pass a different id to model an
        impostor presenting someone else's identity.

        Transient device failures
        -------------------------
        When *max_attempts* is above 1, a session aborted by a
        :class:`~repro.core.authentication.DeviceReadError` is retried
        with a **fresh** selected challenge set (each attempt derives an
        independent selection stream).  The same challenges are never
        re-sent: repeated or partial transcripts are exactly what
        chosen-challenge attacks harvest, so transcripts stay one-shot
        per the zero-HD protocol.  Attempts are bounded; the last
        failure propagates.  *retry_delay* seconds (doubling per
        attempt) separate retries.
        """
        if claimed_id is None:
            claimed_id = getattr(responder, "chip_id", None)
            if claimed_id is None:
                raise ValueError(
                    "responder has no chip_id attribute; pass claimed_id explicitly"
                )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        selector = self.selector(claimed_id)
        for attempt in range(max_attempts):
            # Attempt 0 keeps the historical seed derivation so existing
            # experiments reproduce bit-for-bit; later attempts extend
            # the key path, giving an independent (never replayed)
            # challenge draw.
            if attempt == 0:
                session_seed = derive_generator(seed, "auth", claimed_id)
            else:
                session_seed = derive_generator(
                    seed, "auth", claimed_id, "retry", attempt
                )
            try:
                result = authenticate(
                    responder,
                    selector,
                    n_challenges,
                    tolerance=tolerance,
                    condition=condition,
                    seed=session_seed,
                )
            except DeviceReadError:
                if attempt + 1 >= max_attempts:
                    raise
                if retry_delay > 0:
                    time.sleep(retry_delay * 2**attempt)
                continue
            return dataclasses.replace(result, attempts=attempt + 1)
        raise AssertionError("unreachable")  # pragma: no cover

    def identify(
        self,
        responder: Responder,
        *,
        n_challenges: int = 64,
        min_match_fraction: float = 0.95,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: SeedLike = None,
        use_codebook: Optional[bool] = None,
        return_scores: bool = False,
    ) -> IdentificationResult:
        """1:N identification: which enrolled chip is this device?

        Sends one selected-challenge block per enrolled identity (each
        identity's own models pick its challenges) in a single stacked
        device query and scores the answers against each prediction.
        The genuine chip matches its own record perfectly; every other
        record sees a ~50 % coin-flip agreement, so the gap is
        unambiguous whenever ``n_challenges`` is more than a few dozen.

        Two data planes serve the request:

        * the **codebook plane** (*use_codebook=True*, or the default
          once a codebook is built and no per-call *seed* is given):
          every identity's block was materialized once at sync time, so
          the call is one device read plus one XOR + popcount pass over
          the bit-packed codebook -- no selector runs at all;
        * the **dense plane** (*use_codebook=False*, or automatically
          when a per-call *seed* requests fresh blocks): each
          identity's selector re-derives its block from
          ``(seed, "identify", chip_id)``, exactly the historical
          behaviour.

        Both planes produce bit-identical scores for the same blocks,
        and a codebook built with seed ``s`` uses exactly the blocks
        the dense plane derives from ``s``.

        Returns an :class:`IdentificationResult`; ``chip_id`` is
        ``None`` when no identity clears *min_match_fraction* (an
        unenrolled or heavily degraded device).  Ties are deterministic:
        when two identities score identically, the lexicographically
        lowest chip id wins.  Per-identity ``scores`` are built only on
        *return_scores=True* -- at large enrolled populations the dict
        itself is O(N) per request.
        """
        if not self._records:
            raise UnknownChipError("no identities enrolled")
        if use_codebook is None:
            use_codebook = seed is None and n_challenges in self._codebooks
        if use_codebook:
            book = self.codebook(
                n_challenges,
                seed=seed if isinstance(seed, (int, np.integer)) else None,
            )
            responses = np.asarray(
                responder.xor_response(book.stacked_challenges, condition)
            )
            return self._best_match(
                book.ids, book.match(responses),
                min_match_fraction, return_scores,
            )
        ids = self.enrolled_ids
        blocks = [
            self.selector(chip_id).select(
                n_challenges, derive_generator(seed, "identify", chip_id)
            )
            for chip_id in ids
        ]
        # One stacked responder query plus one vectorized comparison for
        # all identities.  Scores are bit-identical to the per-identity
        # loop: each identity's selection generator is unchanged, and a
        # numpy Generator fills a concatenated noise array with exactly
        # the values the per-block calls would have drawn in sequence.
        stacked = np.concatenate([challenges for challenges, _ in blocks])
        predicted = np.stack([predicted for _, predicted in blocks])
        responses = np.asarray(responder.xor_response(stacked, condition))
        responses = responses.reshape(len(ids), n_challenges)
        match = (responses == predicted).mean(axis=1)
        return self._best_match(ids, match, min_match_fraction, return_scores)

    @staticmethod
    def _best_match(
        ids: Sequence[str],
        match: np.ndarray,
        min_match_fraction: float,
        return_scores: bool,
    ) -> IdentificationResult:
        """Winner + optional score dict from a sorted-id score vector.

        *ids* is ascending, so ``argmax`` (first occurrence wins) is
        exactly the deterministic tie-break: highest score, then
        lexicographically lowest chip id.
        """
        best = int(np.argmax(match))
        best_score = float(match[best])
        return IdentificationResult(
            chip_id=ids[best] if best_score >= min_match_fraction else None,
            match_fraction=best_score,
            scores=(
                {chip_id: float(value) for chip_id, value in zip(ids, match)}
                if return_scores else None
            ),
        )

    def identify_many(
        self,
        responders: Sequence[Responder],
        *,
        n_challenges: int = 64,
        min_match_fraction: float = 0.95,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: Optional[int] = None,
        return_scores: bool = False,
    ) -> List[IdentificationResult]:
        """Batched 1:N identification over the codebook plane.

        Every responder answers the same stacked codebook query (one
        device read each); all answers are then scored in **one**
        packed XOR + popcount pass against the codebook, so the
        per-request matching cost is amortized across the batch.
        Results are identical to calling :meth:`identify` with
        *use_codebook=True* once per responder.
        """
        book = self.codebook(n_challenges, seed=seed)
        if not responders:
            return []
        responses = np.stack(
            [
                np.asarray(r.xor_response(book.stacked_challenges, condition))
                for r in responders
            ]
        )
        scores = book.match_many(responses)
        return [
            self._best_match(book.ids, row, min_match_fraction, return_scores)
            for row in scores
        ]

    def authenticate_many(
        self,
        responders: Sequence[Responder],
        claimed_ids: Optional[Sequence[str]] = None,
        *,
        n_challenges: int = 64,
        tolerance: int = ZERO_HAMMING_DISTANCE,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: Optional[int] = None,
    ) -> List[AuthResult]:
        """Batched 1:1 verification over the codebook plane.

        Each responder is read with its claimed identity's materialized
        codebook block; all transcripts are then scored together with
        one packed XOR + popcount pass.  This is the high-throughput
        data plane for fleet-scale re-verification sweeps: codebook
        blocks are **reused across sessions** (they are identification
        blocks, not one-shot session challenges), so for the paper's
        strict one-time-transcript protocol use
        :meth:`authenticate` / the service layer instead.
        """
        if claimed_ids is None:
            claimed_ids = [
                getattr(responder, "chip_id", None) for responder in responders
            ]
            if any(chip_id is None for chip_id in claimed_ids):
                raise ValueError(
                    "a responder has no chip_id attribute; "
                    "pass claimed_ids explicitly"
                )
        if len(claimed_ids) != len(responders):
            raise ValueError(
                f"{len(responders)} responders but {len(claimed_ids)} claimed ids"
            )
        if not responders:
            return []
        book = self.codebook(n_challenges, seed=seed)
        rows = []
        for chip_id in claimed_ids:
            self.record(chip_id)  # raises UnknownChipError for strangers
            rows.append(book.row(chip_id))
        responses = np.stack(
            [
                np.asarray(r.xor_response(row.challenges, condition))
                for r, row in zip(responders, rows)
            ]
        )
        packed = pack_responses(responses)
        predicted = np.ascontiguousarray(np.stack([row.packed for row in rows]))
        # Row-aligned packed scoring through the kernel backend (the
        # numpy path is the former popcount-sum expression, bit for bit).
        mismatches = _packed_distances(packed, predicted, use_lut=False)
        return [
            AuthResult(
                approved=bool(count <= tolerance),
                n_challenges=n_challenges,
                n_mismatches=int(count),
                tolerance=tolerance,
                condition=condition,
            )
            for count in mismatches
        ]


@dataclasses.dataclass(frozen=True)
class IdentificationResult:
    """Outcome of a 1:N identification sweep.

    Attributes
    ----------
    chip_id:
        Best-matching enrolled identity, or ``None`` if nothing cleared
        the match threshold.
    match_fraction:
        Per-challenge agreement of the best candidate.
    scores:
        ``chip_id -> match fraction`` for every enrolled identity, or
        ``None`` unless the caller opted in with ``return_scores=True``
        (building the dict is O(N) per request at scale).
    """

    chip_id: Optional[str]
    match_fraction: float
    scores: Optional[Dict[str, float]] = None


class ModelResponder:
    """Adapter: answer challenges from an attacker's learned model.

    Wraps any estimator with a ``predict(features)`` method (an MLP or
    logistic attack) so it can be driven through the authentication
    protocol -- the paper's security claim is precisely that such a
    responder should fail against a >= 10-XOR PUF.
    """

    def __init__(self, model, chip_id: str = "attacker") -> None:
        if not hasattr(model, "predict"):
            raise TypeError("model must expose a predict(features) method")
        self._model = model
        self.chip_id = chip_id

    def xor_response(
        self,
        challenges: np.ndarray,
        condition: OperatingCondition = NOMINAL_CONDITION,
    ) -> np.ndarray:
        """Model predictions in place of silicon responses.

        The operating condition is ignored: a software clone has no
        physics.
        """
        return np.asarray(self._model.predict(parity_features(challenges)))

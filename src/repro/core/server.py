"""The authentication server and its enrollment database.

Ties the pieces of :mod:`repro.core` into the deployment objects a
system integrator would use: an :class:`AuthenticationServer` that
stores :class:`~repro.core.enrollment.EnrollmentRecord` entries (delay
parameters + thresholds -- not CRP tables) and runs Fig.-7 sessions,
and a :class:`ModelResponder` adapter that lets an attacker's learned
model masquerade as a device, for security evaluations.

The database is *alive*: registrations, re-tightenings and revocations
arrive while identifications are being served.  Every mutation bumps a
monotone epoch **and** is journaled per chip id, so the identification
codebooks resync incrementally -- a wave of mutations costs work
proportional to the wave, not to the fleet
(:meth:`AuthenticationServer.dirty_since`).  Revocation is terminal and
enforced here, at the protocol layer: revoked identities cannot
re-register, cannot authenticate, and are tombstoned out of every
codebook the moment :meth:`AuthenticationServer.revoke` returns (see
:mod:`repro.core.lifecycle`).
"""

from __future__ import annotations

import bisect
import dataclasses
import json
import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.adjustment import BetaFactors
from repro.core.authentication import (
    AuthResult,
    DeviceReadError,
    Responder,
    ZERO_HAMMING_DISTANCE,
    authenticate,
)
from repro.core.codebook import (
    CodebookPolicy,
    IdentificationCodebook,
    _packed_distances,
    pack_responses,
)
from repro.core.enrollment import EnrollmentRecord, enroll_chip
from repro.core.lifecycle import (
    LifecycleError,
    LifecycleState,
    RevocationRecord,
    RevokedChipError,
    revocations_from_payload,
    revocations_to_payload,
)
from repro.core.selection import ChallengeSelector
from repro.crp.transform import ParityFeatureCache, parity_features
from repro.silicon.chip import PufChip
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.rng import SeedLike, derive_generator

__all__ = [
    "AuthenticationServer",
    "IdentificationResult",
    "ModelResponder",
    "UnknownChipError",
]

#: File-name prefix of non-record artefacts inside a database directory
#: (codebooks); :meth:`AuthenticationServer.load_database` skips these
#: when collecting enrollment records.
_CODEBOOK_PREFIX = "_codebook_"

#: File name of the persisted revocation table inside a database
#: directory.  Unlike a corrupt codebook (recoverable -- rebuild from
#: records), a corrupt revocation table is a security fault and refuses
#: to load.
_LIFECYCLE_FILE = "_lifecycle.json"


class UnknownChipError(KeyError):
    """Raised for authentication attempts against an unenrolled identity."""


class AuthenticationServer:
    """Server-side database and protocol driver.

    Parameters
    ----------
    records:
        Optional initial ``chip_id -> EnrollmentRecord`` mapping.
    codebook_policy:
        How eagerly identification codebooks chase database mutations
        (:class:`~repro.core.codebook.CodebookPolicy`).  The default is
        fully eager -- every identification sees a synced codebook;
        deferred policies trade bounded staleness for never stalling a
        request on a rebuild wave.
    """

    def __init__(
        self,
        records: Optional[Mapping[str, EnrollmentRecord]] = None,
        *,
        codebook_policy: Optional[CodebookPolicy] = None,
    ) -> None:
        self._records: Dict[str, EnrollmentRecord] = dict(records or {})
        self._selectors: Dict[str, ChallengeSelector] = {}
        self._feature_cache = ParityFeatureCache()
        self._codebooks: Dict[int, IdentificationCodebook] = {}
        self._sorted_ids: Optional[List[str]] = None
        self._epoch = 0
        self._mutations: Dict[str, int] = {}
        # Epoch-ordered mutation log; lets dirty_since() take the tail
        # after a synced epoch by bisection instead of scanning every
        # chip ever mutated.  Compacted against _mutations when it
        # outgrows the population (long-lived servers stay O(N)).
        self._journal_log: List[Tuple[int, str]] = []
        self._revocations: Dict[str, RevocationRecord] = {}
        self.codebook_policy = codebook_policy or CodebookPolicy()
        #: Corrupt codebook files discarded (and scheduled for rebuild)
        #: by :meth:`load_database`.
        self.codebook_recoveries = 0

    # ------------------------------------------------------------------
    # Database management
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotone database version; bumped on every mutation.

        Codebooks and batched callers compare this against the epoch
        they last synced at: equal means every cached artefact is
        current, no fingerprint sweep needed.
        """
        return self._epoch

    @property
    def enrolled_ids(self) -> list[str]:
        """Identifiers of all enrolled chips (cached between mutations).

        Includes revoked identities -- their records are retained for
        audit; use :attr:`active_ids` for the serveable fleet.
        """
        if self._sorted_ids is None:
            self._sorted_ids = sorted(self._records)
        return list(self._sorted_ids)

    @property
    def active_ids(self) -> list[str]:
        """Identifiers of enrolled chips that are not revoked."""
        if not self._revocations:
            return self.enrolled_ids
        return [c for c in self.enrolled_ids if c not in self._revocations]

    def record(self, chip_id: str) -> EnrollmentRecord:
        """The stored record for *chip_id* (revoked records included)."""
        try:
            return self._records[chip_id]
        except KeyError:
            raise UnknownChipError(
                f"chip {chip_id!r} is not enrolled; known: {self.enrolled_ids}"
            ) from None

    def dirty_since(self, synced_epoch: Optional[int]) -> Optional[Set[str]]:
        """Chip ids mutated after *synced_epoch* (the journal view).

        ``None`` in means ``None`` out: a consumer that never synced
        has no baseline, so it must do a full sweep.  The journal only
        covers this process's mutations -- exactly the window between a
        codebook's last sync and now -- which is why freshly loaded
        codebooks start with a full fingerprint sweep.
        """
        if synced_epoch is None:
            return None
        start = bisect.bisect_right(
            self._journal_log, synced_epoch, key=lambda entry: entry[0]
        )
        return {chip_id for _, chip_id in self._journal_log[start:]}

    def _journal(self, chip_id: str) -> None:
        self._epoch += 1
        self._mutations[chip_id] = self._epoch
        self._journal_log.append((self._epoch, chip_id))
        if len(self._journal_log) > max(64, 2 * len(self._mutations)):
            # Re-mutated chips leave dead duplicates behind; keeping
            # only each chip's latest epoch preserves every
            # dirty_since() answer.
            self._journal_log = sorted(
                (epoch, chip) for chip, epoch in self._mutations.items()
            )
        self._sorted_ids = None

    def register(self, record: EnrollmentRecord) -> None:
        """Store (or replace) an enrollment record.

        Bumps the database epoch and journals the mutation against the
        chip id, so codebooks revalidate exactly this row at their next
        sync.  Re-registering a revoked identity is refused
        (:class:`~repro.core.lifecycle.RevokedChipError`): an attacker
        holding an extracted model must not re-enter the fleet under a
        burned name.
        """
        revocation = self._revocations.get(record.chip_id)
        if revocation is not None:
            raise RevokedChipError(revocation, "re-registration")
        self._records[record.chip_id] = record
        self._selectors.pop(record.chip_id, None)
        self._journal(record.chip_id)

    def retighten(
        self, chip_id: str, beta0: float = 0.25, beta1: float = 2.2
    ) -> EnrollmentRecord:
        """Tighten *chip_id*'s selection thresholds by scaling its betas.

        The paper's threshold adjustment is multiplicative
        (:meth:`~repro.core.thresholds.ThresholdPair.scale`), so
        re-tightening composes into the stored
        :class:`~repro.core.adjustment.BetaFactors` -- the updated
        record persists, round-trips through ``save_database``, and its
        changed fingerprint invalidates exactly this chip's codebook
        rows.  The defaults match the serving layer's rung-2 ladder
        step (see :class:`repro.service.ServiceConfig`).
        """
        revocation = self._revocations.get(chip_id)
        if revocation is not None:
            raise RevokedChipError(revocation, "re-tightening")
        record = self.record(chip_id)
        updated = record.with_betas(
            BetaFactors(record.betas.beta0 * beta0, record.betas.beta1 * beta1)
        )
        self.register(updated)
        return updated

    def enroll(self, chip: PufChip, seed: SeedLike = None, **kwargs) -> EnrollmentRecord:
        """Enroll *chip* (see :func:`repro.core.enrollment.enroll_chip`)
        and store the record."""
        record = enroll_chip(chip, seed=seed, **kwargs)
        self.register(record)
        return record

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def revoke(self, chip_id: str, reason: str = "") -> RevocationRecord:
        """Revoke an enrolled identity, immediately and terminally.

        The record is retained (audit; the id is burned forever) but
        the identity stops serving *now*: every built codebook's row is
        tombstoned out of argmax before this method returns -- no
        rebuild, no sync, no staleness window, whatever the codebook
        policy says.  Raises
        :class:`~repro.core.lifecycle.LifecycleError` on double revoke
        and :class:`UnknownChipError` for strangers.
        """
        if chip_id in self._revocations:
            raise LifecycleError(
                f"chip {chip_id!r} is already revoked "
                f"({self._revocations[chip_id].reason or 'no reason recorded'})"
            )
        self.record(chip_id)  # strangers raise UnknownChipError
        self._journal(chip_id)
        revocation = RevocationRecord(
            chip_id=chip_id, reason=reason, epoch=self._epoch
        )
        self._revocations[chip_id] = revocation
        self._selectors.pop(chip_id, None)
        for book in self._codebooks.values():
            book.revoke_row(chip_id)
        return revocation

    def is_revoked(self, chip_id: str) -> bool:
        """Whether *chip_id* has been revoked."""
        return chip_id in self._revocations

    def revocation(self, chip_id: str) -> Optional[RevocationRecord]:
        """The revocation record for *chip_id*, or ``None`` if active."""
        return self._revocations.get(chip_id)

    @property
    def revocations(self) -> Dict[str, RevocationRecord]:
        """Snapshot of the revocation table (chip id -> record)."""
        return dict(self._revocations)

    def lifecycle_state(self, chip_id: str) -> LifecycleState:
        """Lifecycle state of an enrolled identity."""
        self.record(chip_id)  # strangers raise UnknownChipError
        if chip_id in self._revocations:
            return LifecycleState.REVOKED
        return LifecycleState.ACTIVE

    def _refuse_revoked(self, chip_id: str, operation: str) -> None:
        revocation = self._revocations.get(chip_id)
        if revocation is not None:
            raise RevokedChipError(revocation, operation)

    # ------------------------------------------------------------------
    # Cached artefacts
    # ------------------------------------------------------------------
    @property
    def feature_cache_stats(self) -> dict:
        """Counter snapshot of the shared parity-feature cache.

        All of the server's selectors share one
        :class:`~repro.crp.transform.ParityFeatureCache`; its
        hits/misses/evictions (see
        :meth:`~repro.crp.transform.ParityFeatureCache.stats`) say how
        much transform work the serving layer is actually skipping --
        the number the audit/summary outputs surface.
        """
        return self._feature_cache.stats()

    def selector(self, chip_id: str) -> ChallengeSelector:
        """Cached challenge selector for one identity.

        All of a server's selectors share one parity-feature cache, so
        re-derived deterministic challenge batches (identification
        streams, repeated sessions) skip the transform entirely.
        """
        if chip_id not in self._selectors:
            self._selectors[chip_id] = self.record(chip_id).selector(
                feature_cache=self._feature_cache
            )
        return self._selectors[chip_id]

    def codebook(
        self, n_challenges: int = 64, *, seed: Optional[int] = None
    ) -> IdentificationCodebook:
        """The identification codebook for *n_challenges*.

        Created on first use (with *seed* fixing the per-identity
        selection streams) and cached per block length.  Under the
        default (eager) policy any staleness is repaired here, before
        the codebook is returned -- incrementally, via the mutation
        journal, so the cost is proportional to what actually changed.
        Under a deferred policy the codebook is served stale as long as
        the pending-row count stays within
        :attr:`~repro.core.codebook.CodebookPolicy.max_stale_rows`; one
        row more and the sync happens on the spot.  Revocations are
        never stale either way (tombstones are applied at revoke time).
        """
        if not self._records:
            raise UnknownChipError("no identities enrolled")
        book = self._codebooks.get(n_challenges)
        if book is None:
            book = IdentificationCodebook(n_challenges, seed=seed)
            self._codebooks[n_challenges] = book
        if book.synced_epoch != self._epoch:
            policy = self.codebook_policy
            if (
                policy.deferred
                and len(book) > 0
                and book.pending_rows(
                    self._records, self.dirty_since(book.synced_epoch)
                )
                <= policy.max_stale_rows
            ):
                return book
            self._sync_codebook(book)
        return book

    def _sync_codebook(
        self,
        book: IdentificationCodebook,
        limit: Optional[int] = None,
        faults=None,
    ) -> int:
        return book.sync(
            self._records,
            self.selector,
            epoch=self._epoch,
            dirty=self.dirty_since(book.synced_epoch),
            revoked=self._revocations,
            limit=limit,
            faults=faults,
        )

    def sync_codebooks(
        self, limit: Optional[int] = None, *, faults=None
    ) -> Dict[int, int]:
        """Maintenance resync of every built codebook.

        The deferred policy's other half: a background loop (or the
        lifecycle driver's tick) calls this to drain pending rebuilds
        off the serving path.  *limit* caps row builds per codebook
        this call (default: the policy's ``rebuild_batch``); leftovers
        stay pending for the next call.  Returns ``block length ->
        rows rebuilt``.
        """
        if limit is None:
            limit = self.codebook_policy.rebuild_batch
        rebuilt: Dict[int, int] = {}
        for n_challenges, book in self._codebooks.items():
            if book.synced_epoch == self._epoch:
                rebuilt[n_challenges] = 0
                continue
            rebuilt[n_challenges] = self._sync_codebook(
                book, limit=limit, faults=faults
            )
        return rebuilt

    def codebook_status(self, n_challenges: int = 64) -> Dict[str, object]:
        """Staleness/shape snapshot of one codebook (monitoring hook)."""
        book = self._codebooks.get(n_challenges)
        if book is None:
            return {"built": False, "epoch": self._epoch}
        pending = 0
        if book.synced_epoch != self._epoch:
            pending = book.pending_rows(
                self._records, self.dirty_since(book.synced_epoch)
            )
        return {
            "built": True,
            "epoch": self._epoch,
            "synced_epoch": book.synced_epoch,
            "rows": len(book),
            "pending_rows": pending,
            "revoked_rows": len(book.revoked_ids),
            "rebuilds": book.rebuilds,
            "restacks": book.restacks,
            "row_writes": book.row_writes,
            "deferred": self.codebook_policy.deferred,
            "max_stale_rows": self.codebook_policy.max_stale_rows,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_database(self, directory, *, faults=None) -> None:
        """Write every enrollment record into *directory* (one .npz each).

        File names are derived from chip ids; ids must therefore be
        filesystem-safe (the library's ``chip-N`` convention is).
        Built identification codebooks are persisted alongside the
        records (one ``_codebook_<n>.npz`` per block length, written
        atomically with an embedded checksum), and the revocation table
        goes into ``_lifecycle.json`` -- revocations are durable facts
        that must survive a server reload.
        """
        from pathlib import Path

        from repro.engine.runtime import atomic_write_bytes

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for chip_id, record in self._records.items():
            record.save(directory / f"{chip_id}.npz")
        atomic_write_bytes(
            directory / _LIFECYCLE_FILE,
            json.dumps(
                revocations_to_payload(self._revocations), indent=2
            ).encode("utf-8"),
        )
        for n_challenges, book in self._codebooks.items():
            if len(book) == 0:
                continue
            # Persist current rows only; a stale codebook is synced
            # first so the saved artefact matches the saved records.
            if book.synced_epoch != self._epoch:
                self._sync_codebook(book)
            book.save(
                directory / f"{_CODEBOOK_PREFIX}{n_challenges}.npz",
                faults=faults,
            )

    @classmethod
    def load_database(cls, directory, *, faults=None) -> "AuthenticationServer":
        """Rebuild a server from a :meth:`save_database` directory.

        Persisted codebooks are loaded as-is and validated lazily: each
        row carries the fingerprint of the record it was built from, so
        rows whose records changed (or vanished) since the save are
        rebuilt on the next identification instead of being trusted.
        A codebook file that fails its checksum (bit rot, a crashed
        writer that somehow half-landed) is *discarded* -- the server
        loads fine, counts the loss in
        :attr:`codebook_recoveries`, and rebuilds from records on
        demand; corrupt bytes never become scores.  A corrupt
        ``_lifecycle.json`` is different: the revocation table is a
        security artefact, so it refuses to load
        (:class:`~repro.crp.dataset.CorruptDatasetError`).
        """
        from pathlib import Path

        from repro.crp.dataset import CorruptDatasetError

        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"no database directory at {directory}")
        revocations: Dict[str, RevocationRecord] = {}
        lifecycle_path = directory / _LIFECYCLE_FILE
        if lifecycle_path.exists():
            try:
                payload = json.loads(lifecycle_path.read_text("utf-8"))
                revocations = revocations_from_payload(payload)
            except (ValueError, KeyError, TypeError) as error:
                raise CorruptDatasetError(
                    f"revocation table {lifecycle_path} is corrupt: {error}"
                ) from error
        records = {}
        codebooks: Dict[int, IdentificationCodebook] = {}
        recoveries = 0
        for path in sorted(directory.glob("*.npz")):
            if path.name.startswith(_CODEBOOK_PREFIX):
                try:
                    book = IdentificationCodebook.load(path, faults=faults)
                except CorruptDatasetError:
                    recoveries += 1
                    continue
                codebooks[book.n_challenges] = book
                continue
            record = EnrollmentRecord.load(path)
            records[record.chip_id] = record
        server = cls(records)
        server._revocations = revocations
        server.codebook_recoveries = recoveries
        for book in codebooks.values():
            for chip_id in revocations:
                book.revoke_row(chip_id)
        server._codebooks.update(codebooks)
        return server

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def authenticate(
        self,
        responder: Responder,
        *,
        claimed_id: Optional[str] = None,
        n_challenges: int = 64,
        tolerance: int = ZERO_HAMMING_DISTANCE,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: SeedLike = None,
        max_attempts: int = 1,
        retry_delay: float = 0.0,
    ) -> AuthResult:
        """Authenticate *responder* against a claimed identity.

        ``claimed_id`` defaults to the responder's own ``chip_id``
        attribute (the honest case); pass a different id to model an
        impostor presenting someone else's identity.  A claim against a
        revoked identity raises
        :class:`~repro.core.lifecycle.RevokedChipError` before any
        challenge is issued -- revoked chips get no transcript material
        at all.

        Transient device failures
        -------------------------
        When *max_attempts* is above 1, a session aborted by a
        :class:`~repro.core.authentication.DeviceReadError` is retried
        with a **fresh** selected challenge set (each attempt derives an
        independent selection stream).  The same challenges are never
        re-sent: repeated or partial transcripts are exactly what
        chosen-challenge attacks harvest, so transcripts stay one-shot
        per the zero-HD protocol.  Attempts are bounded; the last
        failure propagates.  *retry_delay* seconds (doubling per
        attempt) separate retries.
        """
        if claimed_id is None:
            claimed_id = getattr(responder, "chip_id", None)
            if claimed_id is None:
                raise ValueError(
                    "responder has no chip_id attribute; pass claimed_id explicitly"
                )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self._refuse_revoked(claimed_id, "authentication")
        selector = self.selector(claimed_id)
        for attempt in range(max_attempts):
            # Attempt 0 keeps the historical seed derivation so existing
            # experiments reproduce bit-for-bit; later attempts extend
            # the key path, giving an independent (never replayed)
            # challenge draw.
            if attempt == 0:
                session_seed = derive_generator(seed, "auth", claimed_id)
            else:
                session_seed = derive_generator(
                    seed, "auth", claimed_id, "retry", attempt
                )
            try:
                result = authenticate(
                    responder,
                    selector,
                    n_challenges,
                    tolerance=tolerance,
                    condition=condition,
                    seed=session_seed,
                )
            except DeviceReadError:
                if attempt + 1 >= max_attempts:
                    raise
                if retry_delay > 0:
                    time.sleep(retry_delay * 2**attempt)
                continue
            return dataclasses.replace(result, attempts=attempt + 1)
        raise AssertionError("unreachable")  # pragma: no cover

    def identify(
        self,
        responder: Responder,
        *,
        n_challenges: int = 64,
        min_match_fraction: float = 0.95,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: SeedLike = None,
        use_codebook: Optional[bool] = None,
        return_scores: bool = False,
    ) -> IdentificationResult:
        """1:N identification: which enrolled chip is this device?

        Sends one selected-challenge block per enrolled identity (each
        identity's own models pick its challenges) in a single stacked
        device query and scores the answers against each prediction.
        The genuine chip matches its own record perfectly; every other
        record sees a ~50 % coin-flip agreement, so the gap is
        unambiguous whenever ``n_challenges`` is more than a few dozen.

        Two data planes serve the request:

        * the **codebook plane** (*use_codebook=True*, or the default
          once a codebook is built and no per-call *seed* is given):
          every identity's block was materialized once at sync time, so
          the call is one device read plus one XOR + popcount pass over
          the bit-packed codebook -- no selector runs at all;
        * the **dense plane** (*use_codebook=False*, or automatically
          when a per-call *seed* requests fresh blocks): each
          identity's selector re-derives its block from
          ``(seed, "identify", chip_id)``, exactly the historical
          behaviour.

        Both planes produce bit-identical scores for the same blocks,
        and a codebook built with seed ``s`` uses exactly the blocks
        the dense plane derives from ``s``.  Revoked identities can win
        on neither plane: the dense sweep iterates :attr:`active_ids`,
        the codebook plane masks tombstoned rows out of argmax.

        Returns an :class:`IdentificationResult`; ``chip_id`` is
        ``None`` when no identity clears *min_match_fraction* (an
        unenrolled or heavily degraded device).  Ties are deterministic:
        when two identities score identically, the lexicographically
        lowest chip id wins.  Per-identity ``scores`` are built only on
        *return_scores=True* -- at large enrolled populations the dict
        itself is O(N) per request.
        """
        if not self._records:
            raise UnknownChipError("no identities enrolled")
        if use_codebook is None:
            use_codebook = seed is None and n_challenges in self._codebooks
        if use_codebook:
            book = self.codebook(
                n_challenges,
                seed=seed if isinstance(seed, (int, np.integer)) else None,
            )
            if not len(book):
                # Every identity revoked: sync compacted the book to
                # zero rows.  Same typed refusal as the dense plane,
                # instead of a raw empty-codebook RuntimeError.
                raise UnknownChipError("no active identities enrolled")
            responses = np.asarray(
                responder.xor_response(book.stacked_challenges, condition)
            )
            return self._best_match(
                book.ids, book.match(responses),
                min_match_fraction, return_scores,
                active=book.active_mask,
            )
        ids = self.active_ids
        if not ids:
            raise UnknownChipError("no active identities enrolled")
        blocks = [
            self.selector(chip_id).select(
                n_challenges, derive_generator(seed, "identify", chip_id)
            )
            for chip_id in ids
        ]
        # One stacked responder query plus one vectorized comparison for
        # all identities.  Scores are bit-identical to the per-identity
        # loop: each identity's selection generator is unchanged, and a
        # numpy Generator fills a concatenated noise array with exactly
        # the values the per-block calls would have drawn in sequence.
        stacked = np.concatenate([challenges for challenges, _ in blocks])
        predicted = np.stack([predicted for _, predicted in blocks])
        responses = np.asarray(responder.xor_response(stacked, condition))
        responses = responses.reshape(len(ids), n_challenges)
        match = (responses == predicted).mean(axis=1)
        return self._best_match(ids, match, min_match_fraction, return_scores)

    @staticmethod
    def _best_match(
        ids: Sequence[str],
        match: np.ndarray,
        min_match_fraction: float,
        return_scores: bool,
        active: Optional[np.ndarray] = None,
    ) -> IdentificationResult:
        """Winner + optional score dict from a sorted-id score vector.

        *ids* is ascending, so ``argmax`` (first occurrence wins) is
        exactly the deterministic tie-break: highest score, then
        lexicographically lowest chip id.  An *active* mask excludes
        tombstoned (revoked) rows from both the winner search and the
        reported scores.
        """
        if active is not None and not active.all():
            if not active.any():
                return IdentificationResult(
                    chip_id=None,
                    match_fraction=0.0,
                    scores={} if return_scores else None,
                )
            masked = np.where(active, match, -1.0)
        else:
            active = None
            masked = match
        best = int(np.argmax(masked))
        best_score = float(match[best])
        return IdentificationResult(
            chip_id=ids[best] if best_score >= min_match_fraction else None,
            match_fraction=best_score,
            scores=(
                {
                    chip_id: float(value)
                    for index, (chip_id, value) in enumerate(zip(ids, match))
                    if active is None or active[index]
                }
                if return_scores else None
            ),
        )

    def identify_many(
        self,
        responders: Sequence[Responder],
        *,
        n_challenges: int = 64,
        min_match_fraction: float = 0.95,
        condition: OperatingCondition = NOMINAL_CONDITION,
        conditions: Optional[Sequence[OperatingCondition]] = None,
        seed: Optional[int] = None,
        return_scores: bool = False,
    ) -> List[IdentificationResult]:
        """Batched 1:N identification over the codebook plane.

        Every responder answers the same stacked codebook query (one
        device read each); all answers are then scored in **one**
        packed XOR + popcount pass against the codebook, so the
        per-request matching cost is amortized across the batch.
        Results are identical to calling :meth:`identify` with
        *use_codebook=True* once per responder.

        *conditions* optionally gives each responder its own operating
        condition (the batching front end coalesces requests observed
        at different V/T points); it overrides *condition* per item.
        """
        if not self._records:
            raise UnknownChipError("no identities enrolled")
        book = self.codebook(n_challenges, seed=seed)
        if not len(book):
            raise UnknownChipError("no active identities enrolled")
        if not responders:
            return []
        if conditions is None:
            conditions = [condition] * len(responders)
        elif len(conditions) != len(responders):
            raise ValueError(
                f"{len(responders)} responders but {len(conditions)} conditions"
            )
        # Pack each transcript as it is read: per-item packing works on
        # a cache-resident row block, and the stacked batch grid is the
        # 8x smaller packed form (large unpacked grids spill to DRAM
        # and dominate the pass).
        n_rows = len(book)
        packed = np.stack(
            [
                pack_responses(
                    np.asarray(
                        r.xor_response(book.stacked_challenges, cond)
                    ).reshape(n_rows, n_challenges)
                )
                for r, cond in zip(responders, conditions)
            ]
        )
        scores = book.match_packed(packed)
        active = book.active_mask
        return [
            self._best_match(
                book.ids, row, min_match_fraction, return_scores, active=active
            )
            for row in scores
        ]

    def authenticate_many(
        self,
        responders: Sequence[Responder],
        claimed_ids: Optional[Sequence[str]] = None,
        *,
        n_challenges: int = 64,
        tolerance: int = ZERO_HAMMING_DISTANCE,
        condition: OperatingCondition = NOMINAL_CONDITION,
        seed: Optional[int] = None,
    ) -> List[AuthResult]:
        """Batched 1:1 verification over the codebook plane.

        Each responder is read with its claimed identity's materialized
        codebook block; all transcripts are then scored together with
        one packed XOR + popcount pass.  This is the high-throughput
        data plane for fleet-scale re-verification sweeps: codebook
        blocks are **reused across sessions** (they are identification
        blocks, not one-shot session challenges), so for the paper's
        strict one-time-transcript protocol use
        :meth:`authenticate` / the service layer instead.
        """
        if claimed_ids is None:
            claimed_ids = [
                getattr(responder, "chip_id", None) for responder in responders
            ]
            if any(chip_id is None for chip_id in claimed_ids):
                raise ValueError(
                    "a responder has no chip_id attribute; "
                    "pass claimed_ids explicitly"
                )
        if len(claimed_ids) != len(responders):
            raise ValueError(
                f"{len(responders)} responders but {len(claimed_ids)} claimed ids"
            )
        if not responders:
            return []
        book = self.codebook(n_challenges, seed=seed)
        rows = []
        for chip_id in claimed_ids:
            self._refuse_revoked(chip_id, "batched authentication")
            self.record(chip_id)  # raises UnknownChipError for strangers
            rows.append(book.row(chip_id))
        responses = np.stack(
            [
                np.asarray(r.xor_response(row.challenges, condition))
                for r, row in zip(responders, rows)
            ]
        )
        packed = pack_responses(responses)
        predicted = np.ascontiguousarray(np.stack([row.packed for row in rows]))
        # Row-aligned packed scoring through the kernel backend (the
        # numpy path is the former popcount-sum expression, bit for bit).
        mismatches = _packed_distances(packed, predicted, use_lut=False)
        return [
            AuthResult(
                approved=bool(count <= tolerance),
                n_challenges=n_challenges,
                n_mismatches=int(count),
                tolerance=tolerance,
                condition=condition,
            )
            for count in mismatches
        ]


@dataclasses.dataclass(frozen=True)
class IdentificationResult:
    """Outcome of a 1:N identification sweep.

    Attributes
    ----------
    chip_id:
        Best-matching enrolled identity, or ``None`` if nothing cleared
        the match threshold.
    match_fraction:
        Per-challenge agreement of the best candidate.
    scores:
        ``chip_id -> match fraction`` for every enrolled identity, or
        ``None`` unless the caller opted in with ``return_scores=True``
        (building the dict is O(N) per request at scale).
    """

    chip_id: Optional[str]
    match_fraction: float
    scores: Optional[Dict[str, float]] = None


class ModelResponder:
    """Adapter: answer challenges from an attacker's learned model.

    Wraps any estimator with a ``predict(features)`` method (an MLP or
    logistic attack) so it can be driven through the authentication
    protocol -- the paper's security claim is precisely that such a
    responder should fail against a >= 10-XOR PUF.
    """

    def __init__(self, model, chip_id: str = "attacker") -> None:
        if not hasattr(model, "predict"):
            raise TypeError("model must expose a predict(features) method")
        self._model = model
        self.chip_id = chip_id

    def xor_response(
        self,
        challenges: np.ndarray,
        condition: OperatingCondition = NOMINAL_CONDITION,
    ) -> np.ndarray:
        """Model predictions in place of silicon responses.

        The operating condition is ignored: a software clone has no
        physics.
        """
        return np.asarray(self._model.predict(parity_features(challenges)))

"""Noise-bifurcation authentication (ref [6]: Yu et al., HOST 2014).

The idea: hide which challenge produced which response.  Challenges are
grouped in blocks of ``d`` (the decimation factor); for each block the
device evaluates all ``d`` challenges but returns **one** response bit,
for a block-private random position it never reveals.

* The **server**, holding the full delay model, predicts all ``d``
  responses per block and accepts a returned bit if it matches *any*
  of them.  An honest device always matches; a guessing impostor
  matches a block with probability ``1 - 2**-d`` -- 75 % for
  ``d = 2`` -- so the acceptance threshold must sit far above 50 % and
  "a higher number of CRPs" is needed for the same confidence, the
  drawback the paper points out.
* The **attacker** sees (block challenges, one unattributed bit).  The
  canonical attack training set assigns the returned bit to every
  challenge of its block, which injects label noise ~ (d-1)/(2d)
  (25 % for d = 2) and slows model convergence.

Implemented against the library's chip/oracle interfaces so the
baseline benchmarks can compare equal-error-rate CRP budgets and attack
learning curves with the paper's scheme.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.core.model import XorPufModel
from repro.crp.challenges import random_challenges
from repro.crp.dataset import CrpDataset
from repro.silicon.chip import PufChip
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.rng import SeedLike, derive_generator
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "NoiseBifurcationSession",
    "run_noise_bifurcation_session",
    "attacker_view",
]


@dataclasses.dataclass(frozen=True)
class NoiseBifurcationSession:
    """Transcript plus verdict of one noise-bifurcation authentication.

    Attributes
    ----------
    approved:
        Server verdict.
    n_blocks:
        Challenge blocks exchanged.
    match_fraction:
        Blocks whose returned bit matched one of the server's
        predictions.
    threshold:
        Acceptance threshold on the match fraction.
    challenges:
        ``(n_blocks, d, k)`` challenges sent (public).
    returned_bits:
        ``(n_blocks,)`` device bits (public).
    """

    approved: bool
    n_blocks: int
    match_fraction: float
    threshold: float
    challenges: np.ndarray
    returned_bits: np.ndarray

    @property
    def decimation(self) -> int:
        return self.challenges.shape[1]


def run_noise_bifurcation_session(
    chip: PufChip,
    server_model: XorPufModel,
    n_blocks: int,
    *,
    decimation: int = 2,
    threshold: float = 0.90,
    condition: OperatingCondition = NOMINAL_CONDITION,
    seed: SeedLike = None,
) -> NoiseBifurcationSession:
    """One authentication session of the ref-[6] protocol.

    Parameters
    ----------
    chip:
        The (deployed) device; only its XOR output is used.
    server_model:
        The server's delay model of the claimed identity (noise
        bifurcation, like the paper's scheme, assumes the server stores
        delay parameters rather than CRP tables).
    n_blocks:
        Number of d-challenge blocks; one bit is returned per block.
    decimation:
        Block size d.
    threshold:
        Minimum match fraction for approval.  Must exceed the random
        baseline ``1 - 2**-d`` (75 % for d = 2, since a guessing device
        only fails a block when all d predictions coincide on the
        opposite bit), so thresholds near 0.9 are typical.
    """
    n_blocks = check_positive_int(n_blocks, "n_blocks")
    decimation = check_positive_int(decimation, "decimation")
    check_probability(threshold, "threshold")
    flat = random_challenges(
        n_blocks * decimation, chip.n_stages, derive_generator(seed, "challenges")
    )
    challenges = flat.reshape(n_blocks, decimation, chip.n_stages)

    # Device side: evaluate everything, return one bit per block from a
    # private random position.
    responses = chip.xor_response(flat, condition).reshape(n_blocks, decimation)
    positions = derive_generator(seed, "device").integers(0, decimation, size=n_blocks)
    returned = responses[np.arange(n_blocks), positions]

    # Server side: a bit matches if any prediction in its block equals it.
    predicted = server_model.predict_xor_response(flat).reshape(n_blocks, decimation)
    matches = (predicted == returned[:, np.newaxis]).any(axis=1)
    match_fraction = float(matches.mean())
    return NoiseBifurcationSession(
        approved=match_fraction >= threshold,
        n_blocks=n_blocks,
        match_fraction=match_fraction,
        threshold=threshold,
        challenges=challenges,
        returned_bits=returned,
    )


def attacker_view(session: NoiseBifurcationSession) -> CrpDataset:
    """The attacker's best training set from a public transcript.

    Attributes every returned bit to **each** challenge of its block
    (the attacker cannot know the true position), which injects the
    scheme's characteristic label noise of roughly ``(d-1)/(2d)``.
    """
    n_blocks, decimation, k = session.challenges.shape
    challenges = session.challenges.reshape(n_blocks * decimation, k)
    labels = np.repeat(session.returned_bits, decimation)
    return CrpDataset(challenges, labels)

"""Measurement-based stable-CRP selection (ref [1] of the paper).

The predecessor scheme the paper improves on: during enrollment, test a
large batch of random challenges on silicon and keep the ones whose
soft responses are 100 % stable on every individual PUF -- *purely from
measurement*, with no model.  The server stores the surviving CRP table
and draws authentication challenges from it.

The paper's critique, which the ablation benchmarks quantify:

* for an n-input XOR PUF only ~0.8**n of tested challenges survive, so
  the measurement cost per usable CRP explodes with n;
* the scheme cannot predict the stability of challenges it never
  tested, so the table is all there is (storage grows with usage);
* robustness to voltage/temperature requires physically re-testing at
  every corner (``conditions=paper_corner_grid()``), whereas the
  model-based scheme only tightens thresholds.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.core.authentication import AuthResult, Responder, ZERO_HAMMING_DISTANCE
from repro.crp.challenges import random_challenges
from repro.crp.dataset import CrpDataset
from repro.silicon.chip import PufChip
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.rng import SeedLike, as_generator, derive_generator
from repro.utils.validation import check_positive_int

__all__ = ["MeasuredCrpTable", "enroll_measured_table", "authenticate_from_table"]


@dataclasses.dataclass(frozen=True)
class MeasuredCrpTable:
    """The server-side CRP table of the measurement-based scheme.

    Attributes
    ----------
    chip_id:
        Chip the table belongs to.
    crps:
        Stable challenges with their (noise-free, by construction) XOR
        responses.
    n_tested:
        Candidate challenges measured during enrollment -- the scheme's
        cost denominator.
    n_trials:
        Counter depth used for the stability test.
    """

    chip_id: str
    crps: CrpDataset
    n_tested: int
    n_trials: int

    @property
    def yield_fraction(self) -> float:
        """Usable CRPs per tested challenge (~0.8**n at nominal)."""
        return len(self.crps) / self.n_tested if self.n_tested else float("nan")

    def draw(self, n_challenges: int, seed: SeedLike = None) -> CrpDataset:
        """Random authentication subset of the stored table."""
        n_challenges = check_positive_int(n_challenges, "n_challenges")
        if n_challenges > len(self.crps):
            raise ValueError(
                f"table holds {len(self.crps)} CRPs, asked for {n_challenges}"
            )
        rng = as_generator(seed)
        indices = rng.choice(len(self.crps), size=n_challenges, replace=False)
        return self.crps.subset(np.sort(indices))


def enroll_measured_table(
    chip: PufChip,
    n_candidates: int,
    *,
    n_trials: int = 100_000,
    conditions: Optional[Sequence[OperatingCondition]] = None,
    measurement_method: str = "binomial",
    blow_fuses: bool = True,
    seed: SeedLike = None,
) -> MeasuredCrpTable:
    """Ref-[1] enrollment: keep challenges measured stable everywhere.

    Parameters
    ----------
    chip:
        Chip in enrollment phase.
    n_candidates:
        Random challenges to test (the scheme's enrollment cost).
    conditions:
        Operating points that must *all* show stability; defaults to
        nominal only.  Corner-hardening requires listing the corners
        here -- i.e. physically testing at each one, the expense the
        paper's scheme avoids.
    """
    check_positive_int(n_candidates, "n_candidates")
    conditions = [NOMINAL_CONDITION] if conditions is None else list(conditions)
    if not conditions:
        raise ValueError("conditions must not be empty")
    challenges = random_challenges(
        n_candidates, chip.n_stages, derive_generator(seed, "candidates")
    )
    stable = np.ones(n_candidates, dtype=bool)
    for index in range(chip.n_pufs):
        for condition in conditions:
            soft = chip.enrollment_soft_responses(
                index, challenges, n_trials, condition, method=measurement_method
            )
            stable &= soft.stable_mask
    # Responses of surviving challenges never flip, so one clean readout
    # of each constituent defines the XOR golden response.
    kept = challenges[stable]
    responses = np.zeros(len(kept), dtype=np.int8)
    if len(kept):
        for index in range(chip.n_pufs):
            bits = chip.enrollment_individual_responses(index, kept)
            responses = np.bitwise_xor(responses, bits)
    if blow_fuses:
        chip.blow_fuses()
    return MeasuredCrpTable(
        chip_id=chip.chip_id,
        crps=CrpDataset(kept, responses),
        n_tested=n_candidates,
        n_trials=n_trials,
    )


def authenticate_from_table(
    responder: Responder,
    table: MeasuredCrpTable,
    n_challenges: int,
    *,
    tolerance: int = ZERO_HAMMING_DISTANCE,
    condition: OperatingCondition = NOMINAL_CONDITION,
    seed: SeedLike = None,
) -> AuthResult:
    """Authenticate against the stored CRP table (ref-[1] protocol)."""
    subset = table.draw(n_challenges, derive_generator(seed, "draw"))
    responses = np.asarray(responder.xor_response(subset.challenges, condition))
    n_mismatches = int((responses != subset.responses).sum())
    return AuthResult(
        approved=n_mismatches <= tolerance,
        n_challenges=n_challenges,
        n_mismatches=n_mismatches,
        tolerance=tolerance,
        condition=condition,
    )

"""Lockdown mutual authentication (ref [7]: Yu et al., TMSCS 2016).

The lockdown idea: the device refuses to act as an open CRP oracle.
Challenges for a session are derived from *both* a server nonce and a
device nonce, so neither side can steer them; the device answers **one
challenge block per session** and enforces a lifetime session budget.
An attacker with physical access can still harvest CRPs, but only at
the budgeted rate and only for unpredictable challenges -- which caps
the training-set size any modeling attack can reach (the quantity the
baseline benchmark sweeps).

The paper's criticism -- "this strategy requires complicated system
level support" -- shows up here as the extra protocol state both sides
must keep (nonces, budgets, session counters) compared with the
stateless Fig.-7 flow.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.core.authentication import AuthResult
from repro.core.selection import ChallengeSelector
from repro.crp.challenges import ChallengeStream
from repro.silicon.chip import PufChip
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.rng import SeedLike, derive_generator
from repro.utils.validation import check_positive_int

__all__ = ["LockdownDevice", "LockdownBudgetError", "lockdown_authenticate"]


class LockdownBudgetError(RuntimeError):
    """Raised when the device's lifetime session budget is exhausted."""


def _session_seed(server_nonce: int, device_nonce: int) -> Tuple[int, int]:
    """Combine the two nonces into a challenge-stream seed path."""
    return (int(server_nonce) & 0x7FFFFFFF, int(device_nonce) & 0x7FFFFFFF)


class LockdownDevice:
    """A deployed chip wrapped in the lockdown session discipline.

    Parameters
    ----------
    chip:
        The deployed chip (only its XOR output is used).
    max_sessions:
        Lifetime budget of response blocks; the core of the lockdown
        guarantee.
    block_size:
        Challenges answered per session.
    seed:
        Seed of the device's nonce generator.
    """

    def __init__(
        self,
        chip: PufChip,
        *,
        max_sessions: int = 1000,
        block_size: int = 64,
        seed: SeedLike = None,
    ) -> None:
        self._chip = chip
        self.max_sessions = check_positive_int(max_sessions, "max_sessions")
        self.block_size = check_positive_int(block_size, "block_size")
        self._nonce_rng = derive_generator(seed, "nonce")
        self._sessions_used = 0

    @property
    def chip_id(self) -> str:
        """Identity of the wrapped chip."""
        return self._chip.chip_id

    @property
    def sessions_remaining(self) -> int:
        """Budgeted sessions left."""
        return self.max_sessions - self._sessions_used

    def respond(
        self,
        server_nonce: int,
        condition: OperatingCondition = NOMINAL_CONDITION,
    ) -> Tuple[int, np.ndarray, np.ndarray]:
        """Answer one session: (device nonce, challenges, responses).

        The challenge block is derived from both nonces; the device
        cannot be queried on chosen challenges, and each call burns one
        unit of the lifetime budget.
        """
        if self._sessions_used >= self.max_sessions:
            raise LockdownBudgetError(
                f"device {self.chip_id!r} exhausted its {self.max_sessions}-session budget"
            )
        self._sessions_used += 1
        device_nonce = int(self._nonce_rng.integers(0, 2**31 - 1))
        stream = ChallengeStream(
            self._chip.n_stages,
            derive_generator(0, "lockdown", *_session_seed(server_nonce, device_nonce)),
        )
        challenges = stream.take(self.block_size)
        responses = self._chip.xor_response(challenges, condition)
        return device_nonce, challenges, responses


def lockdown_authenticate(
    device: LockdownDevice,
    selector: ChallengeSelector,
    *,
    server_nonce: Optional[int] = None,
    max_hd_fraction: float = 0.10,
    condition: OperatingCondition = NOMINAL_CONDITION,
    seed: SeedLike = None,
) -> AuthResult:
    """One lockdown session verified with the server's delay models.

    The nonce-derived challenges are *random*, not selected, so some
    will be unstable and the server must tolerate a Hamming-distance
    budget -- unlike the paper's selected-challenge zero-HD policy.
    The server still exploits its models: it scores only the challenges
    it predicts stable (unstable ones carry no information) and applies
    the tolerance to those.
    """
    if server_nonce is None:
        server_nonce = int(derive_generator(seed, "server").integers(0, 2**31 - 1))
    __, challenges, responses = device.respond(server_nonce, condition)
    predicted = selector.predicted_xor_response(challenges)
    informative = selector.stable_mask(challenges)
    n_scored = int(informative.sum())
    if n_scored == 0:
        # Nothing informative this session: deny and let the caller retry.
        return AuthResult(
            approved=False,
            n_challenges=0,
            n_mismatches=0,
            tolerance=0,
            condition=condition,
        )
    n_mismatches = int((responses[informative] != predicted[informative]).sum())
    tolerance = int(np.floor(max_hd_fraction * n_scored))
    return AuthResult(
        approved=n_mismatches <= tolerance,
        n_challenges=n_scored,
        n_mismatches=n_mismatches,
        tolerance=tolerance,
        condition=condition,
    )

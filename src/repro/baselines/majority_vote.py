"""Majority-voting baseline: tolerate noise instead of avoiding it.

The conventional alternative to stable-CRP selection: use *random*
challenges, let the device answer with the majority over M repeated
evaluations, and let the server accept up to a fractional Hamming
distance.  This is the "Hamming distance based PUF authentication
policy" the paper's introduction contrasts with; it degrades quickly
for wide XOR PUFs because majority voting cannot rescue a challenge
whose constituent soft response sits near 0.5.

The benchmarks use this scheme to show why the paper's zero-HD policy
is only possible *with* challenge selection.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.authentication import AuthResult
from repro.crp.challenges import random_challenges
from repro.crp.dataset import CrpDataset
from repro.silicon.chip import PufChip
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.silicon.xorpuf import XorArbiterPuf
from repro.utils.rng import SeedLike, derive_generator
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "MajorityVoteRecord",
    "enroll_majority_vote",
    "authenticate_majority_vote",
    "majority_vote_responses",
]


def majority_vote_responses(
    read: Callable[[np.ndarray], np.ndarray],
    challenges: np.ndarray,
    n_votes: int,
) -> np.ndarray:
    """Majority bit over *n_votes* one-shot reads per challenge (ties -> 1).

    *read* is any ``challenges -> bits`` callable: an XOR PUF's ``eval``,
    a deployed responder's ``xor_response``, or an attacker model.  The
    k-shot rung of the serving path's degradation ladder
    (:mod:`repro.service`) reuses this exact vote so the baseline and
    the resilient service debounce noise identically.
    """
    check_positive_int(n_votes, "n_votes")
    votes = np.zeros(len(challenges), dtype=np.int64)
    for _ in range(n_votes):
        votes += np.asarray(read(challenges), dtype=np.int64)
    return (2 * votes >= n_votes).astype(np.int8)


def _majority_xor_response(
    xor_puf: XorArbiterPuf,
    challenges: np.ndarray,
    n_votes: int,
    condition: OperatingCondition,
    rng,
) -> np.ndarray:
    """Majority over *n_votes* one-shot XOR evaluations (ties -> 1)."""
    return majority_vote_responses(
        lambda batch: xor_puf.eval(batch, condition, rng), challenges, n_votes
    )


@dataclasses.dataclass(frozen=True)
class MajorityVoteRecord:
    """Golden responses for a random challenge set (majority-vote scheme)."""

    chip_id: str
    crps: CrpDataset
    n_votes: int


def enroll_majority_vote(
    chip: PufChip,
    n_challenges: int,
    *,
    n_votes: int = 15,
    condition: OperatingCondition = NOMINAL_CONDITION,
    blow_fuses: bool = True,
    seed: SeedLike = None,
) -> MajorityVoteRecord:
    """Record majority-voted golden XOR responses for random challenges.

    Uses the chip's enrollment access only to the extent of reading the
    XOR output repeatedly (no per-PUF data is needed), so the scheme is
    cheap -- its weakness is at authentication time.
    """
    check_positive_int(n_challenges, "n_challenges")
    check_positive_int(n_votes, "n_votes")
    challenges = random_challenges(
        n_challenges, chip.n_stages, derive_generator(seed, "challenges")
    )
    golden = _majority_xor_response(
        chip.oracle(), challenges, n_votes, condition, derive_generator(seed, "votes")
    )
    if blow_fuses:
        chip.blow_fuses()
    return MajorityVoteRecord(
        chip_id=chip.chip_id,
        crps=CrpDataset(challenges, golden),
        n_votes=n_votes,
    )


def authenticate_majority_vote(
    chip: PufChip,
    record: MajorityVoteRecord,
    n_challenges: int,
    *,
    max_hd_fraction: float = 0.10,
    n_votes: int | None = None,
    condition: OperatingCondition = NOMINAL_CONDITION,
    seed: SeedLike = None,
) -> AuthResult:
    """Authenticate with majority-voted responses and a relaxed HD budget.

    Parameters
    ----------
    max_hd_fraction:
        Accepted fractional Hamming distance (the relaxation the paper
        criticises: it must grow with the XOR width n, eroding
        security margin against model-equipped impostors).
    n_votes:
        Device-side votes per challenge (defaults to the enrollment
        depth).
    """
    check_positive_int(n_challenges, "n_challenges")
    check_probability(max_hd_fraction, "max_hd_fraction")
    n_votes = record.n_votes if n_votes is None else check_positive_int(n_votes, "n_votes")
    if n_challenges > len(record.crps):
        raise ValueError(
            f"record holds {len(record.crps)} CRPs, asked for {n_challenges}"
        )
    rng = derive_generator(seed, "draw")
    indices = np.sort(rng.choice(len(record.crps), size=n_challenges, replace=False))
    subset = record.crps.subset(indices)
    responses = _majority_xor_response(
        chip.oracle(), subset.challenges, n_votes, condition,
        derive_generator(seed, "votes"),
    )
    n_mismatches = int((responses != subset.responses).sum())
    tolerance = int(np.floor(max_hd_fraction * n_challenges))
    return AuthResult(
        approved=n_mismatches <= tolerance,
        n_challenges=n_challenges,
        n_mismatches=n_mismatches,
        tolerance=tolerance,
        condition=condition,
    )

"""Prior-work authentication schemes used as comparison baselines.

* :mod:`repro.baselines.measurement_selection` -- ref [1]: stable-CRP
  tables from pure measurement.
* :mod:`repro.baselines.majority_vote` -- conventional HD-tolerant
  authentication with response majority voting.
* :mod:`repro.baselines.noise_bifurcation` -- ref [6]: decimated
  responses with relaxed matching.
* :mod:`repro.baselines.lockdown` -- ref [7]: nonce-derived challenges
  with a lifetime session budget.
"""

from repro.baselines.lockdown import (
    LockdownBudgetError,
    LockdownDevice,
    lockdown_authenticate,
)
from repro.baselines.majority_vote import (
    MajorityVoteRecord,
    authenticate_majority_vote,
    enroll_majority_vote,
    majority_vote_responses,
)
from repro.baselines.measurement_selection import (
    MeasuredCrpTable,
    authenticate_from_table,
    enroll_measured_table,
)
from repro.baselines.noise_bifurcation import (
    NoiseBifurcationSession,
    attacker_view,
    run_noise_bifurcation_session,
)

__all__ = [
    "LockdownBudgetError",
    "LockdownDevice",
    "lockdown_authenticate",
    "MajorityVoteRecord",
    "authenticate_majority_vote",
    "enroll_majority_vote",
    "majority_vote_responses",
    "MeasuredCrpTable",
    "authenticate_from_table",
    "enroll_measured_table",
    "NoiseBifurcationSession",
    "attacker_view",
    "run_noise_bifurcation_session",
]

"""Per-chunk CRP evaluation kernel (runs inline or in worker processes).

This module holds the *stateless* part of the evaluation engine: given a
chunk of challenges, a bank of PUFs, a list of operating conditions and
a root seed, produce the counter values (or analytic probabilities) for
every ``(condition, puf, challenge)`` cell.  Everything here is a plain
top-level function so :class:`concurrent.futures.ProcessPoolExecutor`
can pickle it.

Determinism contract
--------------------
Measurement randomness is *not* drawn from one sequential stream (which
would make results depend on chunk boundaries and worker scheduling).
Instead the challenge axis is divided into fixed blocks of
:data:`RNG_BLOCK` challenges, and each ``(block, condition, puf)`` cell
gets its own generator derived from the root seed.  Because the engine
only ever cuts chunks at block boundaries, the bits a given challenge
receives depend only on its global index -- so ``jobs=1`` equals
``jobs=N`` and chunked equals unchunked, bit for bit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.crp.transform import parity_features
from repro.faults import FaultPlan, Site
from repro.kernels import resolve_backend
from repro.silicon.arbiter import ArbiterPuf, stack_fused_params
from repro.silicon.environment import OperatingCondition

__all__ = ["RNG_BLOCK", "block_generator", "evaluate_chunk", "noise_free_chunk"]

#: Number of challenges per RNG block.  This constant is part of the
#: determinism contract: changing it changes every derived stream, so it
#: is deliberately not a tunable.
RNG_BLOCK = 4096


def block_generator(
    root: np.random.SeedSequence,
    block: int,
    condition_index: int,
    puf_index: int,
) -> np.random.Generator:
    """Independent generator for one ``(block, condition, puf)`` cell.

    The spawn key extends the root's key, so different engine calls
    (different roots) and different cells never share a stream.
    """
    entropy = root.entropy if root.entropy is not None else 0
    child = np.random.SeedSequence(
        entropy=entropy,
        spawn_key=(*root.spawn_key, int(block), int(condition_index), int(puf_index)),
    )
    return np.random.default_rng(child)


def evaluate_chunk(
    pufs: Sequence[ArbiterPuf],
    challenges: np.ndarray,
    conditions: Sequence[OperatingCondition],
    n_trials: int,
    root: np.random.SeedSequence,
    first_block: int,
    method: str = "binomial",
    phi_out: Optional[np.ndarray] = None,
    faults: Optional[FaultPlan] = None,
    chunk_index: int = 0,
    attempt: int = 0,
    in_worker: bool = False,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Evaluate one block-aligned chunk of challenges.

    On the numpy backend the parity feature matrix is computed **once**
    and shared across all PUFs and all conditions -- ``phi(c)`` depends
    only on the challenge, which is the engine's central saving over the
    per-PUF legacy path.  A fused backend (numba) goes further: the
    challenge -> parity -> delta -> ndtr chain runs in a single compiled
    pass per challenge and ``phi`` is never materialised at all.

    Parameters
    ----------
    pufs:
        Arbiter PUFs to evaluate (e.g. all constituents of an XOR PUF,
        or every constituent of every chip in a lot).
    challenges:
        ``(n, k)`` chunk whose first row sits at global block
        *first_block* * :data:`RNG_BLOCK`.
    conditions:
        Operating conditions to sweep.
    n_trials:
        Counter depth T (ignored for ``method="analytic"``).
    root:
        Seed sequence all block streams are derived from.
    first_block:
        Global block index of the chunk's first challenge.
    method:
        ``"binomial"`` (exact counter draw) or ``"analytic"`` (exact
        probability, no randomness).
    phi_out:
        Optional preallocated feature buffer, reused across chunks.
    faults:
        Optional fault plan consulted at :data:`repro.faults.Site.ENGINE_CHUNK`
        on entry and :data:`~repro.faults.Site.ENGINE_RESULT` on return
        (no-op when ``None``).
    chunk_index:
        Engine chunk index, used only to address injected faults.
    attempt:
        Retry attempt number for deterministic fault firing.
    in_worker:
        Whether this call runs inside a process-pool worker (lets
        ``pool_only`` faults spare the serial fallback path).
    backend:
        Kernel backend name resolved by the parent engine (``None``
        resolves through the process-wide selection policy).  Pool
        workers receive the parent's concrete choice here, so a
        ``set_backend`` call (or CLI flag) in the driving process
        governs the whole pool.  The backend is loaded and JIT-warmed
        once per worker process, not per chunk.

    Returns
    -------
    numpy.ndarray
        ``(n_conditions, n_pufs, n)`` array -- int64 counter values for
        ``binomial``, float64 probabilities for ``analytic``.
    """
    if faults is not None:
        faults.check(
            Site.ENGINE_CHUNK, chunk_index, attempt=attempt, in_worker=in_worker
        )
    n = len(challenges)
    kb = resolve_backend(backend)
    dtype = np.float64 if method == "analytic" else np.int64
    out = np.empty((len(conditions), len(pufs), n), dtype=dtype)
    probabilities = _grid_probabilities(kb, pufs, challenges, conditions, phi_out)
    for ci in range(len(conditions)):
        for pi in range(len(pufs)):
            p = probabilities[ci, pi]
            if method == "analytic":
                out[ci, pi] = p
                continue
            for offset in range(0, n, RNG_BLOCK):
                stop = min(offset + RNG_BLOCK, n)
                rng = block_generator(root, first_block + offset // RNG_BLOCK, ci, pi)
                out[ci, pi, offset:stop] = rng.binomial(n_trials, p[offset:stop])
    if faults is not None:
        out = faults.corrupt(
            Site.ENGINE_RESULT, out, chunk_index, attempt=attempt, in_worker=in_worker
        )
    return out


def _grid_probabilities(
    kb,
    pufs: Sequence[ArbiterPuf],
    challenges: np.ndarray,
    conditions: Sequence[OperatingCondition],
    phi_out: Optional[np.ndarray],
) -> np.ndarray:
    """``(n_conditions, n_pufs, n)`` exact 1-probabilities for one chunk.

    The fused path never materialises ``phi``; the shared-phi path is
    the seed code verbatim (bit-identical on the numpy backend).
    """
    n = len(challenges)
    if kb.fused and kb.grid_soft_probabilities is not None:
        weights, quads, has_quad, gains, sigmas = stack_fused_params(
            pufs, conditions
        )
        flat = np.empty((weights.shape[0], n), dtype=np.float64)
        kb.grid_soft_probabilities(
            np.ascontiguousarray(challenges), weights, quads, has_quad,
            gains, sigmas, flat,
        )
        return flat.reshape(len(conditions), len(pufs), n)
    phi = parity_features(challenges, out=phi_out, validate=False)
    out = np.empty((len(conditions), len(pufs), n), dtype=np.float64)
    for ci, condition in enumerate(conditions):
        for pi, puf in enumerate(pufs):
            out[ci, pi] = puf.response_probability_from_features(phi, condition)
    return out


def noise_free_chunk(
    pufs: Sequence[ArbiterPuf],
    challenges: np.ndarray,
    condition: OperatingCondition,
    phi_out: Optional[np.ndarray] = None,
    faults: Optional[FaultPlan] = None,
    chunk_index: int = 0,
    attempt: int = 0,
    in_worker: bool = False,
    backend: Optional[str] = None,
) -> np.ndarray:
    """``(n_pufs, n)`` noise-free responses for one chunk.

    Shared-phi on the numpy backend; one fused challenge -> parity ->
    sign pass per challenge on a fused backend (see :func:`evaluate_chunk`
    for the *backend* parameter's semantics).
    """
    if faults is not None:
        faults.check(
            Site.ENGINE_CHUNK, chunk_index, attempt=attempt, in_worker=in_worker
        )
    kb = resolve_backend(backend)
    if kb.fused and kb.grid_noise_free is not None:
        weights, quads, has_quad, gains, _ = stack_fused_params(
            pufs, [condition]
        )
        out = np.empty((len(pufs), len(challenges)), dtype=np.int8)
        kb.grid_noise_free(
            np.ascontiguousarray(challenges), weights, quads, has_quad,
            gains, out,
        )
    else:
        phi = parity_features(challenges, out=phi_out, validate=False)
        out = np.stack(
            [puf.noise_free_response_from_features(phi, condition) for puf in pufs]
        )
    if faults is not None:
        out = faults.corrupt(
            Site.ENGINE_RESULT, out, chunk_index, attempt=attempt, in_worker=in_worker
        )
    return out

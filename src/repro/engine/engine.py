"""The chunked, multi-core CRP evaluation engine.

The paper's measurement campaigns evaluate the *same* challenges on many
arbiter PUFs (all n constituents of an XOR PUF, every chip of a lot) at
many operating conditions.  The legacy per-PUF loop recomputes the
parity feature matrix ``phi(c)`` for every ``(PUF, condition)`` pair,
even though ``phi`` depends only on the challenge.
:class:`EvaluationEngine` fixes both axes of waste:

* **Shared features** -- ``phi`` is computed once per challenge chunk
  and reused by every PUF and every condition via the
  ``*_from_features`` fast paths on
  :class:`~repro.silicon.arbiter.ArbiterPuf`.
* **Bounded memory** -- challenges stream through the engine in chunks
  of :attr:`EvaluationEngine.chunk_size` rows, so a 1 M-challenge sweep
  never materialises the full ``(n, k + 1)`` feature matrix (264 MB for
  the paper's 1 M x 32 campaigns).
* **Multi-core fan-out** -- chunks are dispatched to a
  :class:`concurrent.futures.ProcessPoolExecutor` when ``jobs > 1``.

Results are **bit-identical at any worker count and any chunk size**:
measurement randomness is keyed to fixed :data:`~repro.engine.worker.RNG_BLOCK`
challenge blocks (see :mod:`repro.engine.worker`), and chunks are always
cut at block boundaries, so the bits a challenge receives depend only on
its global index -- never on scheduling.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.crp.dataset import SoftResponseDataset
from repro.engine.runtime import (
    CampaignReport,
    CheckpointStore,
    ChunkValidationError,
    DEFAULT_RETRY,
    RetryPolicy,
    campaign_fingerprint,
    run_chunks,
)
from repro.engine.worker import RNG_BLOCK, evaluate_chunk, noise_free_chunk
from repro.faults import FaultPlan
from repro.kernels import (
    BACKEND_NAMES,
    current_backend_name,
    resolve_backend,
)
from repro.silicon.arbiter import ArbiterPuf
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.silicon.xorpuf import XorArbiterPuf
from repro.utils.rng import SeedLike, derive_seed_sequence
from repro.utils.validation import as_challenge_array, check_positive_int

__all__ = ["EvaluationEngine", "DEFAULT_CHUNK_SIZE", "ENGINE_METHODS"]

#: Default challenge rows per chunk (16 RNG blocks; ~17 MB of features
#: at the paper's k = 32).
DEFAULT_CHUNK_SIZE = 65_536

#: Measurement methods the engine accepts.  ``montecarlo`` (the literal
#: T-repetition loop) is deliberately absent: its cost is O(T) per
#: challenge and its consumers keep the legacy path in
#: :mod:`repro.silicon.counters`.
ENGINE_METHODS = ("binomial", "analytic")

_Bounds = Tuple[int, int]


@dataclasses.dataclass(frozen=True)
class EvaluationEngine:
    """Batched CRP evaluator with shared features and chunked streaming.

    Attributes
    ----------
    jobs:
        Worker processes for chunk fan-out.  ``1`` (default) runs
        inline; ``None`` or any value < 1 means "all cores"
        (``os.cpu_count()``).  Results do not depend on this value.
    chunk_size:
        Challenge rows per chunk.  Rounded down to a multiple of
        :data:`~repro.engine.worker.RNG_BLOCK` (minimum one block) so
        chunk boundaries always coincide with RNG-block boundaries --
        the invariant behind chunk-count-independent results.
    retry:
        Per-chunk timeout / bounded-retry / backoff policy (see
        :class:`~repro.engine.runtime.RetryPolicy`).  Recovery never
        changes results, only whether a campaign survives.
    checkpoint_dir:
        Campaign root directory.  When set, every completed chunk is
        persisted atomically with a checksum and a killed sweep resumes
        bit-identically from the last good chunk -- at any later
        ``jobs``/``chunk_size`` (the campaign is keyed by content, not
        by execution geometry).  ``None`` (default) disables
        checkpointing.
    faults:
        Optional :class:`~repro.faults.FaultPlan` for failure-path
        testing; production runs leave it ``None`` and pay nothing.
    kernel_backend:
        Kernel backend for the sweep's hot loops: ``"numpy"``,
        ``"numba"`` or ``None`` (default) for the process-wide selection
        policy of :mod:`repro.kernels`.  Whatever it resolves to is
        shipped *by name* into every chunk call, so pool workers always
        use the same backend as the driving process; each worker loads
        and JIT-warms it once.  The backend is an execution detail, not
        part of a campaign's identity: checkpoints written under one
        backend resume under another (counter values can differ only
        through ULP-level probability differences -- see
        :mod:`repro.kernels`).
    """

    jobs: Optional[int] = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    retry: RetryPolicy = DEFAULT_RETRY
    checkpoint_dir: Optional[Union[str, Path]] = None
    faults: Optional[FaultPlan] = None
    kernel_backend: Optional[str] = None
    #: Failure/recovery trail of the most recent sweep (read-only).
    last_report: Optional[CampaignReport] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        jobs = self.jobs
        if jobs is None or int(jobs) < 1:
            jobs = os.cpu_count() or 1
        object.__setattr__(self, "jobs", int(jobs))
        chunk = check_positive_int(self.chunk_size, "chunk_size")
        object.__setattr__(self, "chunk_size", max(1, chunk // RNG_BLOCK) * RNG_BLOCK)
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if self.checkpoint_dir is not None:
            object.__setattr__(self, "checkpoint_dir", Path(self.checkpoint_dir))
        backend = self.kernel_backend
        if backend == "auto":
            backend = None
        if backend is not None and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown kernel backend {backend!r}; choose from "
                f"{BACKEND_NAMES + ('auto',)}"
            )
        object.__setattr__(self, "kernel_backend", backend)

    # ------------------------------------------------------------------
    # Core counter sweep
    # ------------------------------------------------------------------
    def soft_counts(
        self,
        pufs: Sequence[ArbiterPuf],
        challenges: np.ndarray,
        n_trials: int,
        conditions: Sequence[OperatingCondition] = (NOMINAL_CONDITION,),
        *,
        seed: SeedLike = None,
        method: str = "binomial",
    ) -> np.ndarray:
        """Counter sweep over a ``(condition, PUF, challenge)`` grid.

        Computes ``phi`` once per chunk and reuses it across the whole
        ``conditions x pufs`` grid.

        Returns
        -------
        numpy.ndarray
            ``(len(conditions), len(pufs), len(challenges))`` array:
            int64 counter values for ``method="binomial"``, float64
            exact probabilities for ``method="analytic"``.
        """
        pufs, challenges, conditions = self._check_grid(pufs, challenges, conditions)
        n_trials = check_positive_int(n_trials, "n_trials")
        root = self._root(seed, method)
        dtype = np.float64 if method == "analytic" else np.int64
        out = np.empty((len(conditions), len(pufs), len(challenges)), dtype=dtype)
        for (start, stop), counts in self._evaluated_chunks(
            pufs, challenges, conditions, n_trials, root, method
        ):
            out[:, :, start:stop] = counts
        return out

    def soft_responses(
        self,
        pufs: Sequence[ArbiterPuf],
        challenges: np.ndarray,
        n_trials: int,
        conditions: Sequence[OperatingCondition] = (NOMINAL_CONDITION,),
        *,
        seed: SeedLike = None,
        method: str = "binomial",
    ) -> np.ndarray:
        """Like :meth:`soft_counts` but normalised to [0, 1] fractions."""
        values = self.soft_counts(
            pufs, challenges, n_trials, conditions, seed=seed, method=method
        )
        return values if method == "analytic" else values / n_trials

    # ------------------------------------------------------------------
    # Dataset-producing conveniences
    # ------------------------------------------------------------------
    def measure_grid(
        self,
        pufs: Sequence[ArbiterPuf],
        challenges: np.ndarray,
        n_trials: int,
        conditions: Sequence[OperatingCondition] = (NOMINAL_CONDITION,),
        *,
        seed: SeedLike = None,
        method: str = "binomial",
    ) -> List[List[SoftResponseDataset]]:
        """``[condition][puf]`` grid of soft-response datasets."""
        pufs, challenges, conditions = self._check_grid(pufs, challenges, conditions)
        soft = self.soft_responses(
            pufs, challenges, n_trials, conditions, seed=seed, method=method
        )
        return [
            [
                SoftResponseDataset(challenges, soft[ci, pi], n_trials)
                for pi in range(len(pufs))
            ]
            for ci in range(len(conditions))
        ]

    def measure_soft_responses(
        self,
        puf: ArbiterPuf,
        challenges: np.ndarray,
        n_trials: int,
        condition: OperatingCondition = NOMINAL_CONDITION,
        *,
        seed: SeedLike = None,
        method: str = "binomial",
    ) -> SoftResponseDataset:
        """Chunked single-PUF equivalent of
        :func:`repro.silicon.counters.measure_soft_responses`."""
        grid = self.measure_grid(
            [puf], challenges, n_trials, [condition], seed=seed, method=method
        )
        return grid[0][0]

    def measure_xor_constituents(
        self,
        xor_puf: XorArbiterPuf,
        challenges: np.ndarray,
        n_trials: int,
        condition: OperatingCondition = NOMINAL_CONDITION,
        *,
        seed: SeedLike = None,
        method: str = "binomial",
    ) -> List[SoftResponseDataset]:
        """Per-constituent datasets on a shared challenge matrix."""
        grid = self.measure_grid(
            xor_puf.pufs, challenges, n_trials, [condition], seed=seed, method=method
        )
        return grid[0]

    def measure_lot(
        self,
        chips: Sequence,
        challenges: np.ndarray,
        n_trials: int,
        condition: OperatingCondition = NOMINAL_CONDITION,
        *,
        seed: SeedLike = None,
        method: str = "binomial",
    ) -> List[List[SoftResponseDataset]]:
        """``[chip][puf]`` datasets for a whole lot on shared challenges.

        All constituents of all chips are flattened into one bank so the
        feature matrix is computed once for the entire lot.  Respects
        the fuse gate: raises
        :class:`~repro.silicon.fuses.FuseBlownError` for deployed chips.
        """
        chips = list(chips)
        for chip in chips:
            chip.fuses.check_access("lot-wide soft-response readout")
        pufs = [puf for chip in chips for puf in chip.oracle().pufs]
        flat = self.measure_grid(
            pufs, challenges, n_trials, [condition], seed=seed, method=method
        )[0]
        nested, offset = [], 0
        for chip in chips:
            nested.append(flat[offset : offset + chip.n_pufs])
            offset += chip.n_pufs
        return nested

    # ------------------------------------------------------------------
    # Stability / noise-free sweeps (chunk-reduced, O(chunk) memory)
    # ------------------------------------------------------------------
    def stable_mask(
        self,
        xor_puf: XorArbiterPuf,
        challenges: np.ndarray,
        n_trials: int,
        condition: OperatingCondition = NOMINAL_CONDITION,
        *,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Challenges 100 % stable on *every* constituent over T trials.

        The counter grid is reduced chunk by chunk, so peak memory is
        O(chunk_size * n_pufs) regardless of the sweep size.
        """
        pufs, challenges, conditions = self._check_grid(
            xor_puf.pufs, challenges, [condition]
        )
        n_trials = check_positive_int(n_trials, "n_trials")
        root = self._root(seed, "binomial")
        mask = np.empty(len(challenges), dtype=bool)
        for (start, stop), counts in self._evaluated_chunks(
            pufs, challenges, conditions, n_trials, root, "binomial"
        ):
            stable = (counts == 0) | (counts == n_trials)
            mask[start:stop] = stable.all(axis=(0, 1))
        return mask

    def noise_free_responses(
        self,
        pufs: Sequence[ArbiterPuf],
        challenges: np.ndarray,
        condition: OperatingCondition = NOMINAL_CONDITION,
    ) -> np.ndarray:
        """``(n_pufs, n)`` noise-free responses, chunked with shared phi."""
        pufs, challenges, _ = self._check_grid(pufs, challenges, [condition])
        out = np.empty((len(pufs), len(challenges)), dtype=np.int8)
        for (start, stop), chunk in self._noise_free_chunks(pufs, challenges, condition):
            out[:, start:stop] = chunk
        return out

    def noise_free_xor_response(
        self,
        xor_puf: XorArbiterPuf,
        challenges: np.ndarray,
        condition: OperatingCondition = NOMINAL_CONDITION,
    ) -> np.ndarray:
        """Noise-free XOR response, chunked with shared phi."""
        pufs, challenges, _ = self._check_grid(xor_puf.pufs, challenges, [condition])
        out = np.empty(len(challenges), dtype=np.int8)
        for (start, stop), chunk in self._noise_free_chunks(pufs, challenges, condition):
            out[start:stop] = np.bitwise_xor.reduce(chunk, axis=0)
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _check_grid(
        pufs: Sequence[ArbiterPuf],
        challenges: np.ndarray,
        conditions: Sequence[OperatingCondition],
    ) -> Tuple[List[ArbiterPuf], np.ndarray, List[OperatingCondition]]:
        pufs = list(pufs)
        if not pufs:
            raise ValueError("need at least one PUF to evaluate")
        stages = {puf.n_stages for puf in pufs}
        if len(stages) != 1:
            raise ValueError(f"PUFs disagree on stage count: {sorted(stages)}")
        challenges = as_challenge_array(challenges, pufs[0].n_stages)
        conditions = list(conditions)
        if not conditions:
            raise ValueError("need at least one operating condition")
        return pufs, challenges, conditions

    @staticmethod
    def _root(seed: SeedLike, method: str) -> np.random.SeedSequence:
        if method not in ENGINE_METHODS:
            raise ValueError(
                f"unknown engine method {method!r}; choose from {ENGINE_METHODS}"
            )
        if method == "analytic":
            # Analytic sweeps draw nothing; do not consume generator
            # state (parity with the legacy analytic path).
            return np.random.SeedSequence(0)
        return derive_seed_sequence(seed, "engine")

    def _resolve_backend(self) -> Tuple[str, bool]:
        """``(name, fused)`` of the backend this sweep will run on.

        Resolution happens once per sweep in the driving process --
        misconfiguration (an explicitly requested backend that is not
        installed) fails here, before any chunk is dispatched -- and the
        concrete name is what gets shipped to pool workers, so the
        parent's policy wins over any environment drift in the pool.
        Resolving also pays the (idempotent) JIT warm-up for the inline
        and serial-fallback paths.
        """
        name = self.kernel_backend or current_backend_name()
        return name, resolve_backend(name).fused

    def _chunk_bounds(self, n: int) -> List[_Bounds]:
        return [
            (start, min(start + self.chunk_size, n))
            for start in range(0, max(n, 1), self.chunk_size)
        ]

    def _open_checkpoint(
        self, kind: str, fingerprint: str, meta: dict
    ) -> Optional[CheckpointStore]:
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(
            self.checkpoint_dir, kind, fingerprint, meta=meta, faults=self.faults
        )

    def _begin_report(self) -> CampaignReport:
        report = CampaignReport()
        object.__setattr__(self, "last_report", report)
        return report

    def _evaluated_chunks(
        self,
        pufs: List[ArbiterPuf],
        challenges: np.ndarray,
        conditions: List[OperatingCondition],
        n_trials: int,
        root: np.random.SeedSequence,
        method: str,
    ) -> Iterator[Tuple[_Bounds, np.ndarray]]:
        """Yield ``((start, stop), counts)`` per chunk, fault-tolerantly."""
        bounds = self._chunk_bounds(len(challenges))
        backend_name, fused = self._resolve_backend()
        phi_buf = (
            self._feature_buffer(bounds, pufs[0].n_stages)
            if self.jobs == 1 and not fused
            else None
        )
        dtype = np.float64 if method == "analytic" else np.int64
        grid = (len(conditions), len(pufs))

        def make_call(start, stop, chunk_index, in_worker, attempt):
            buf = None
            if not in_worker and phi_buf is not None and stop - start == self.chunk_size:
                buf = phi_buf
            args = (
                pufs,
                challenges[start:stop],
                conditions,
                n_trials,
                root,
                start // RNG_BLOCK,
                method,
                buf,
                self.faults,
                chunk_index,
                attempt,
                in_worker,
                backend_name,
            )
            return evaluate_chunk, args

        def validate(payload, n_rows):
            self._validate_counts(payload, grid + (n_rows,), dtype, n_trials, method)

        checkpoint = None
        if self.checkpoint_dir is not None:
            fingerprint = campaign_fingerprint(
                "counts",
                method,
                n_trials,
                repr(root.entropy),
                repr(tuple(root.spawn_key)),
                RNG_BLOCK,
                challenges,
                pufs,
                conditions,
            )
            checkpoint = self._open_checkpoint(
                "counts",
                fingerprint,
                meta={
                    "n_challenges": len(challenges),
                    "n_pufs": len(pufs),
                    "n_conditions": len(conditions),
                    "n_trials": n_trials,
                    "method": method,
                },
            )
        yield from run_chunks(
            bounds,
            jobs=self.jobs,
            make_call=make_call,
            validate=validate,
            retry=self.retry,
            checkpoint=checkpoint,
            report=self._begin_report(),
        )

    def _noise_free_chunks(
        self,
        pufs: List[ArbiterPuf],
        challenges: np.ndarray,
        condition: OperatingCondition,
    ) -> Iterator[Tuple[_Bounds, np.ndarray]]:
        bounds = self._chunk_bounds(len(challenges))
        backend_name, fused = self._resolve_backend()
        phi_buf = (
            self._feature_buffer(bounds, pufs[0].n_stages)
            if self.jobs == 1 and not fused
            else None
        )
        n_pufs = len(pufs)

        def make_call(start, stop, chunk_index, in_worker, attempt):
            buf = None
            if not in_worker and phi_buf is not None and stop - start == self.chunk_size:
                buf = phi_buf
            args = (
                pufs,
                challenges[start:stop],
                condition,
                buf,
                self.faults,
                chunk_index,
                attempt,
                in_worker,
                backend_name,
            )
            return noise_free_chunk, args

        def validate(payload, n_rows):
            self._validate_bits(payload, (n_pufs, n_rows))

        checkpoint = None
        if self.checkpoint_dir is not None:
            fingerprint = campaign_fingerprint(
                "noisefree", challenges, pufs, condition
            )
            checkpoint = self._open_checkpoint(
                "noisefree",
                fingerprint,
                meta={"n_challenges": len(challenges), "n_pufs": n_pufs},
            )
        yield from run_chunks(
            bounds,
            jobs=self.jobs,
            make_call=make_call,
            validate=validate,
            retry=self.retry,
            checkpoint=checkpoint,
            report=self._begin_report(),
        )

    @staticmethod
    def _validate_counts(
        payload: np.ndarray,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        n_trials: int,
        method: str,
    ) -> None:
        """Cheap integrity screen: shape, dtype and value range.

        An in-flight corruption (or a buggy worker) almost always lands
        outside the legitimate value range -- counters live in
        ``[0, n_trials]`` and probabilities in ``[0, 1]`` -- so this
        turns silent data damage into a retriable failure.
        """
        if not isinstance(payload, np.ndarray):
            raise ChunkValidationError(
                f"chunk payload is {type(payload).__name__}, expected ndarray"
            )
        if payload.shape != shape:
            raise ChunkValidationError(
                f"chunk payload shape {payload.shape}, expected {shape}"
            )
        if payload.dtype != dtype:
            raise ChunkValidationError(
                f"chunk payload dtype {payload.dtype}, expected {dtype}"
            )
        if payload.size == 0:
            return
        low, high = payload.min(), payload.max()
        limit = 1.0 if method == "analytic" else n_trials
        if low < 0 or high > limit:
            raise ChunkValidationError(
                f"chunk payload values outside [0, {limit}]: "
                f"min={low}, max={high}"
            )

    @staticmethod
    def _validate_bits(payload: np.ndarray, shape: Tuple[int, ...]) -> None:
        if not isinstance(payload, np.ndarray) or payload.shape != shape:
            raise ChunkValidationError(
                f"chunk payload shape "
                f"{getattr(payload, 'shape', None)}, expected {shape}"
            )
        if payload.size and (payload.min() < 0 or payload.max() > 1):
            raise ChunkValidationError("noise-free chunk holds non-bit values")

    def _feature_buffer(
        self, bounds: List[_Bounds], n_stages: int
    ) -> Optional[np.ndarray]:
        """One reusable phi buffer for the inline path's full-size chunks."""
        if len(bounds) < 2:
            return None
        return np.empty((self.chunk_size, n_stages + 1), dtype=np.float64)

"""Fault-tolerant campaign runtime: checkpoints, retries, degradation.

At paper scale a counter sweep is 1 M challenges x 100 k evaluations x
10 chips x 9 V/T corners -- hours of wall clock.  This module wraps the
engine's chunk dispatch in the machinery long campaigns need:

* :class:`CheckpointStore` -- per-chunk results persisted under a
  campaign directory with atomic writes (tmp + fsync + rename) and
  SHA-256 checksums, journalled in a manifest so a killed sweep resumes
  bit-identically from the last good chunk.  Campaigns are keyed by a
  content fingerprint (PUFs, challenges, seed, method), **not** by
  ``jobs``/``chunk_size``, so a sweep may resume at a different worker
  count or chunk size -- the engine's RNG-block determinism guarantees
  the bits come out the same.
* :class:`RetryPolicy` -- per-chunk timeout plus bounded retries with
  exponential backoff and deterministic jitter.
* :func:`run_chunks` -- the dispatch loop: pool submission, timeout
  enforcement, payload validation, retry, and graceful degradation from
  the process pool to in-process serial execution on repeated failure
  or a broken pool.
* :class:`CampaignReport` -- a structured trail of every retry,
  fallback, checksum failure and resumed chunk, so operators can see
  *how* a campaign survived, not just that it did.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.faults import FaultPlan, InjectedCampaignAbort, Site

__all__ = [
    "RetryPolicy",
    "CampaignEvent",
    "CampaignReport",
    "CheckpointStore",
    "CorruptChunkError",
    "CheckpointMismatchError",
    "ChunkValidationError",
    "campaign_fingerprint",
    "run_chunks",
    "atomic_write_bytes",
    "DEFAULT_RETRY",
]

_Bounds = Tuple[int, int]
_PathLike = Union[str, Path]

#: Manifest schema version (bumped on layout changes).
_MANIFEST_VERSION = 1


class CorruptChunkError(RuntimeError):
    """A checkpointed chunk failed its checksum or could not be parsed."""


class CheckpointMismatchError(RuntimeError):
    """A campaign directory's manifest does not match the requested sweep."""


class ChunkValidationError(RuntimeError):
    """A computed chunk payload failed shape/dtype/range validation."""


# ----------------------------------------------------------------------
# Atomic file plumbing
# ----------------------------------------------------------------------
def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* to *path* crash-safely: tmp file + fsync + rename.

    Readers never observe a partial file; after a crash either the old
    content or the new content is present, never a torn mix.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # Make the rename itself durable where the platform allows it.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff, jitter and a timeout.

    Attributes
    ----------
    max_attempts:
        Total attempts per chunk (first try included) before the chunk
        is handed to the serial-fallback path.
    base_delay:
        Backoff before the first retry, in seconds.
    backoff:
        Multiplier applied per further retry.
    max_delay:
        Backoff ceiling, in seconds.
    jitter:
        Fraction of the delay added as deterministic jitter (derived
        from the attempt number, so schedules are reproducible).
    timeout:
        Per-chunk wall-clock budget when running on the process pool;
        ``None`` disables timeout enforcement.
    pool_chunk_failures:
        After this many chunks individually exhaust their pool retries,
        the pool is abandoned and the rest of the campaign runs
        serially in-process.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    timeout: Optional[float] = None
    pool_chunk_failures: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must lie in [0, 1], got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.pool_chunk_failures < 1:
            raise ValueError(
                f"pool_chunk_failures must be >= 1, got {self.pool_chunk_failures}"
            )

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff before retry number *attempt* (1-based), with jitter.

        Jitter is a deterministic function of ``(attempt, key)`` so two
        runs of the same campaign sleep identically -- randomised
        schedules would make failure traces irreproducible.
        """
        if attempt < 1:
            return 0.0
        raw = self.base_delay * self.backoff ** (attempt - 1)
        raw = min(raw, self.max_delay)
        if self.jitter:
            # Cheap splitmix-style hash -> [0, 1) fraction.
            h = (attempt * 0x9E3779B9 + key * 0x85EBCA6B) & 0xFFFFFFFF
            h ^= h >> 16
            h = (h * 0x45D9F3B) & 0xFFFFFFFF
            raw *= 1.0 + self.jitter * ((h & 0xFFFF) / 0x10000)
        return raw


#: The engine's default policy: three attempts, no timeout (timeouts
#: are opt-in because legitimate chunk durations vary enormously).
DEFAULT_RETRY = RetryPolicy()


# ----------------------------------------------------------------------
# Campaign report
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CampaignEvent:
    """One entry in a campaign's failure/recovery trail."""

    kind: str
    chunk: Optional[_Bounds] = None
    attempt: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "chunk": list(self.chunk) if self.chunk is not None else None,
            "attempt": self.attempt,
            "detail": self.detail,
        }


class CampaignReport:
    """Structured record of one campaign run.

    Every retry, timeout, checksum failure, pool fallback and resumed
    chunk is appended as a :class:`CampaignEvent`; counters summarise
    the totals.  The report is what turns "it eventually finished" into
    an auditable failure trail.
    """

    def __init__(self) -> None:
        self.events: List[CampaignEvent] = []
        self.chunks_total = 0
        self.chunks_computed = 0
        self.chunks_resumed = 0
        self.retries = 0
        self.serial_fallbacks = 0
        self.pool_abandoned = False

    def record(
        self,
        kind: str,
        chunk: Optional[_Bounds] = None,
        attempt: int = 0,
        detail: str = "",
    ) -> None:
        self.events.append(CampaignEvent(kind, chunk, attempt, detail))
        if kind == "retry":
            self.retries += 1
        elif kind == "serial_fallback":
            self.serial_fallbacks += 1
        elif kind == "pool_abandoned":
            self.pool_abandoned = True
        elif kind == "chunk_resumed":
            self.chunks_resumed += 1
        elif kind == "chunk_computed":
            self.chunks_computed += 1

    def events_of(self, kind: str) -> List[CampaignEvent]:
        """All recorded events of one kind."""
        return [event for event in self.events if event.kind == kind]

    @property
    def clean(self) -> bool:
        """Whether the campaign completed without a single recovery action."""
        return not (self.retries or self.serial_fallbacks or self.pool_abandoned)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chunks_total": self.chunks_total,
            "chunks_computed": self.chunks_computed,
            "chunks_resumed": self.chunks_resumed,
            "retries": self.retries,
            "serial_fallbacks": self.serial_fallbacks,
            "pool_abandoned": self.pool_abandoned,
            "events": [event.to_dict() for event in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"CampaignReport(chunks={self.chunks_resumed}+{self.chunks_computed}"
            f"/{self.chunks_total}, retries={self.retries}, "
            f"serial_fallbacks={self.serial_fallbacks}, "
            f"pool_abandoned={self.pool_abandoned})"
        )


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
def campaign_fingerprint(kind: str, *parts: Any) -> str:
    """Content fingerprint identifying one campaign's exact work.

    Everything that determines the output bits goes in: the sweep kind,
    method, trial depth, seed material, PUF parameters, challenge bytes
    and operating conditions.  ``jobs`` and ``chunk_size`` deliberately
    do **not** -- the engine's results are independent of them, so a
    resume may change either.
    """
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    for part in parts:
        digest.update(b"\x00")
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            digest.update(str(arr.dtype).encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
        elif isinstance(part, bytes):
            digest.update(part)
        elif isinstance(part, (str, int, float, bool, type(None))):
            digest.update(repr(part).encode("utf-8"))
        else:
            # Structured objects (PUFs, conditions): pickle is stable
            # for the same in-memory values within a library version.
            digest.update(pickle.dumps(part, protocol=4))
    return digest.hexdigest()


class CheckpointStore:
    """Journalled per-chunk persistence for one campaign.

    Layout under the campaign *root* directory::

        root/
          <kind>-<fingerprint[:16]>/
            manifest.json             # journal: config + chunk index
            chunk-<start>-<stop>.npy  # one array per completed chunk

    Each campaign (unique fingerprint) owns its own subdirectory, so
    one root can host the many sweeps of an enrollment without
    collisions.  All writes are atomic; every chunk entry in the
    manifest carries the SHA-256 of the chunk file's bytes, so torn or
    corrupted files are detected on load and simply recomputed.
    """

    def __init__(
        self,
        root: _PathLike,
        kind: str,
        fingerprint: str,
        meta: Optional[Dict[str, Any]] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.root = Path(root)
        self.kind = kind
        self.fingerprint = fingerprint
        self.directory = self.root / f"{kind}-{fingerprint[:16]}"
        self._faults = faults
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.directory / "manifest.json"
        self._chunks: Dict[str, Dict[str, Any]] = {}
        if self._manifest_path.exists():
            self._load_manifest()
        else:
            self._meta = dict(meta or {})
            self._write_manifest()

    # -- manifest ------------------------------------------------------
    def _load_manifest(self) -> None:
        try:
            manifest = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CheckpointMismatchError(
                f"unreadable campaign manifest at {self._manifest_path}: {exc}"
            ) from exc
        if manifest.get("fingerprint") != self.fingerprint:
            raise CheckpointMismatchError(
                f"campaign directory {self.directory} belongs to a different "
                f"sweep (manifest fingerprint {manifest.get('fingerprint')!r}, "
                f"expected {self.fingerprint!r})"
            )
        self._meta = manifest.get("meta", {})
        self._chunks = manifest.get("chunks", {})

    def _write_manifest(self) -> None:
        manifest = {
            "version": _MANIFEST_VERSION,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "meta": self._meta,
            "chunks": self._chunks,
        }
        atomic_write_bytes(
            self._manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )

    @property
    def completed_chunks(self) -> int:
        """Number of chunks journalled as complete."""
        return len(self._chunks)

    # -- chunk round-trips ---------------------------------------------
    @staticmethod
    def _key(start: int, stop: int) -> str:
        return f"{start}-{stop}"

    def _chunk_path(self, start: int, stop: int) -> Path:
        return self.directory / f"chunk-{start}-{stop}.npy"

    def has(self, start: int, stop: int) -> bool:
        """Whether a journalled chunk exists for exactly this range."""
        return self._key(start, stop) in self._chunks

    def store(self, start: int, stop: int, payload: np.ndarray, index: int = 0) -> None:
        """Persist one chunk atomically and journal its checksum."""
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(payload), allow_pickle=False)
        data = buffer.getvalue()
        if self._faults is not None:
            data = self._faults.corrupt_bytes(Site.CHUNK_FILE, data, index=index)
        path = self._chunk_path(start, stop)
        atomic_write_bytes(path, data)
        self._chunks[self._key(start, stop)] = {
            "file": path.name,
            "sha256": _sha256(data),
            "rows": stop - start,
        }
        self._write_manifest()

    def load(self, start: int, stop: int) -> np.ndarray:
        """Load one journalled chunk, verifying its checksum.

        Raises
        ------
        CorruptChunkError
            If the file is missing, fails its checksum, or cannot be
            parsed.  Callers treat this as "not checkpointed" and
            recompute.
        """
        entry = self._chunks.get(self._key(start, stop))
        if entry is None:
            raise CorruptChunkError(f"chunk {start}-{stop} is not journalled")
        path = self.directory / entry["file"]
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CorruptChunkError(
                f"chunk file {path.name} unreadable: {exc}"
            ) from exc
        if _sha256(data) != entry["sha256"]:
            raise CorruptChunkError(
                f"chunk file {path.name} failed its SHA-256 checksum"
            )
        try:
            return np.load(io.BytesIO(data), allow_pickle=False)
        except (ValueError, OSError, EOFError) as exc:
            raise CorruptChunkError(
                f"chunk file {path.name} unparseable: {exc}"
            ) from exc

    def _ranges(self) -> List[_Bounds]:
        ranges = []
        for key in self._chunks:
            lo, hi = key.split("-")
            ranges.append((int(lo), int(hi)))
        return sorted(ranges)

    def covers(self, start: int, stop: int) -> bool:
        """Whether journalled chunks fully tile ``[start, stop)``.

        Chunk files are keyed by challenge-row ranges, so a sweep
        resumed with a *different* chunk size can still reuse earlier
        work: any requested range that the old chunks tile completely
        is assembled from them instead of recomputed.
        """
        cursor = start
        ranges = self._ranges()
        while cursor < stop:
            piece = next((r for r in ranges if r[0] <= cursor < r[1]), None)
            if piece is None:
                return False
            cursor = piece[1]
        return True

    def load_range(self, start: int, stop: int) -> np.ndarray:
        """Assemble ``[start, stop)`` from journalled chunks (any geometry).

        Raises :class:`CorruptChunkError` if the range is not fully
        covered or any contributing chunk fails its checksum.
        """
        pieces: List[np.ndarray] = []
        cursor = start
        ranges = self._ranges()
        while cursor < stop:
            piece = next((r for r in ranges if r[0] <= cursor < r[1]), None)
            if piece is None:
                raise CorruptChunkError(
                    f"rows {cursor}-{stop} are not journalled"
                )
            arr = self.load(*piece)
            lo = cursor - piece[0]
            hi = min(piece[1], stop) - piece[0]
            pieces.append(arr[..., lo:hi])
            cursor += hi - lo
        if len(pieces) == 1:
            return np.ascontiguousarray(pieces[0])
        return np.concatenate(pieces, axis=-1)

    def discard(self, start: int, stop: int) -> None:
        """Drop a chunk from the journal (e.g. after checksum failure)."""
        entry = self._chunks.pop(self._key(start, stop), None)
        if entry is not None:
            self._write_manifest()
            try:
                (self.directory / entry["file"]).unlink()
            except OSError:
                pass

    def prune_corrupt(self, start: int, stop: int) -> int:
        """Discard every journalled chunk overlapping ``[start, stop)``
        that fails verification; returns how many were dropped."""
        dropped = 0
        for lo, hi in self._ranges():
            if hi <= start or lo >= stop:
                continue
            try:
                self.load(lo, hi)
            except CorruptChunkError:
                self.discard(lo, hi)
                dropped += 1
        return dropped


# ----------------------------------------------------------------------
# Fault-tolerant dispatch loop
# ----------------------------------------------------------------------
def run_chunks(
    bounds: List[_Bounds],
    *,
    jobs: int,
    make_call: Callable[[int, int, int, bool, bool], Tuple[Callable, tuple]],
    validate: Callable[[np.ndarray, int], None],
    retry: RetryPolicy = DEFAULT_RETRY,
    checkpoint: Optional[CheckpointStore] = None,
    report: Optional[CampaignReport] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[Tuple[_Bounds, np.ndarray]]:
    """Yield ``((start, stop), payload)`` for every chunk, fault-tolerantly.

    Parameters
    ----------
    bounds:
        Chunk boundaries, in challenge-row coordinates.
    jobs:
        Worker processes; 1 means in-process serial execution.
    make_call:
        ``make_call(start, stop, chunk_index, in_worker, attempt)``
        returning a picklable ``(function, args)`` pair computing the
        chunk.  The runtime re-invokes it per attempt so workers can
        make deterministic fault decisions from the attempt number.
    validate:
        Called with ``(payload, n_rows)``; raises
        :class:`ChunkValidationError` on a corrupt payload, which the
        runtime treats as a retriable failure.
    retry:
        Timeout/backoff policy.
    checkpoint:
        Optional persistent store; completed chunks are loaded instead
        of recomputed and new results are journalled as they finish.
    report:
        Trail collector (a fresh one is created if omitted).
    sleep:
        Backoff sleeper, injectable for tests.

    Chunks are yielded in ``bounds`` order.  :class:`InjectedCampaignAbort`
    is never caught -- it simulates a hard kill.
    """
    if report is None:
        report = CampaignReport()
    report.chunks_total += len(bounds)

    pool: Optional[ProcessPoolExecutor] = None
    pending: Dict[int, Any] = {}
    pool_chunk_failures = 0

    def resumed(index: int, start: int, stop: int) -> Optional[np.ndarray]:
        if checkpoint is None or not checkpoint.covers(start, stop):
            return None
        try:
            payload = checkpoint.load_range(start, stop)
            validate(payload, stop - start)
        except (CorruptChunkError, ChunkValidationError) as exc:
            checkpoint.prune_corrupt(start, stop)
            report.record("chunk_corrupt", (start, stop), detail=str(exc))
            return None
        report.record("chunk_resumed", (start, stop))
        return payload

    def compute_serial(index: int, start: int, stop: int) -> np.ndarray:
        """In-process execution with its own bounded retry loop."""
        last_error: Optional[BaseException] = None
        for attempt in range(retry.max_attempts):
            fn, args = make_call(start, stop, index, False, attempt)
            try:
                payload = fn(*args)
                validate(payload, stop - start)
                return payload
            except InjectedCampaignAbort:
                raise
            except Exception as exc:  # noqa: BLE001 - recovery loop
                last_error = exc
                report.record(
                    "retry", (start, stop), attempt, f"serial: {exc!r}"
                )
                if attempt + 1 < retry.max_attempts:
                    sleep(retry.delay(attempt + 1, key=index))
        raise RuntimeError(
            f"chunk {start}-{stop} failed after {retry.max_attempts} "
            f"serial attempts"
        ) from last_error

    def submit(index: int, start: int, stop: int, attempt: int):
        fn, args = make_call(start, stop, index, True, attempt)
        return pool.submit(fn, *args)

    def abandon_pool(reason: str) -> None:
        nonlocal pool
        if pool is None:
            return
        report.record("pool_abandoned", detail=reason)
        pool.shutdown(wait=False, cancel_futures=True)
        pool = None
        pending.clear()

    use_pool = jobs > 1 and len(bounds) > 1
    if use_pool:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(bounds)))
        for index, (start, stop) in enumerate(bounds):
            if checkpoint is not None and checkpoint.covers(start, stop):
                continue  # probably resumable; submit lazily if not
            pending[index] = submit(index, start, stop, attempt=0)

    try:
        for index, (start, stop) in enumerate(bounds):
            payload = resumed(index, start, stop)
            was_resumed = payload is not None
            if payload is None and pool is not None:
                future = pending.pop(index, None)
                if future is None:
                    future = submit(index, start, stop, attempt=0)
                attempt = 0
                while payload is None:
                    try:
                        result = future.result(timeout=retry.timeout)
                        validate(result, stop - start)
                        payload = result
                        break
                    except InjectedCampaignAbort:
                        raise
                    except BrokenExecutor as exc:
                        abandon_pool(f"broken process pool: {exc!r}")
                        break
                    except FutureTimeoutError:
                        future.cancel()
                        report.record(
                            "retry",
                            (start, stop),
                            attempt,
                            f"timeout after {retry.timeout}s",
                        )
                    except Exception as exc:  # noqa: BLE001 - recovery loop
                        report.record("retry", (start, stop), attempt, repr(exc))
                    attempt += 1
                    if attempt >= retry.max_attempts:
                        pool_chunk_failures += 1
                        report.record(
                            "serial_fallback",
                            (start, stop),
                            attempt,
                            "pool retries exhausted",
                        )
                        if pool_chunk_failures >= retry.pool_chunk_failures:
                            abandon_pool(
                                f"{pool_chunk_failures} chunks exhausted "
                                "their pool retries"
                            )
                        break
                    sleep(retry.delay(attempt, key=index))
                    if pool is None:
                        break
                    future = submit(index, start, stop, attempt=attempt)
            if payload is None:
                payload = compute_serial(index, start, stop)
            if not was_resumed:
                report.record("chunk_computed", (start, stop))
                if checkpoint is not None:
                    checkpoint.store(start, stop, payload, index=index)
            yield (start, stop), payload
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

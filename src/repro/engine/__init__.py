"""Chunked, multi-core CRP evaluation engine.

The performance substrate behind the paper-scale measurement campaigns:
parity features are computed once per challenge chunk and shared across
every PUF and operating condition, chunks stream through bounded memory,
and ``jobs > 1`` fans chunks out over worker processes with results that
stay bit-identical at any worker count or chunk size.

Entry point: :class:`~repro.engine.engine.EvaluationEngine`.
"""

from repro.engine.engine import DEFAULT_CHUNK_SIZE, ENGINE_METHODS, EvaluationEngine
from repro.engine.runtime import (
    CampaignEvent,
    CampaignReport,
    CheckpointMismatchError,
    CheckpointStore,
    ChunkValidationError,
    CorruptChunkError,
    DEFAULT_RETRY,
    RetryPolicy,
    campaign_fingerprint,
)
from repro.engine.worker import RNG_BLOCK, block_generator

__all__ = [
    "EvaluationEngine",
    "DEFAULT_CHUNK_SIZE",
    "ENGINE_METHODS",
    "RNG_BLOCK",
    "block_generator",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "CampaignEvent",
    "CampaignReport",
    "CheckpointStore",
    "CheckpointMismatchError",
    "ChunkValidationError",
    "CorruptChunkError",
    "campaign_fingerprint",
]

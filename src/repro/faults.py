"""Deterministic fault injection for the fault-tolerant runtime.

A trillion-measurement campaign *will* see workers die, disks hiccup and
devices time out; the runtime in :mod:`repro.engine.runtime` exists to
survive that.  This module provides the other half of the story: a way
to *cause* those failures on demand, deterministically, so the recovery
paths can be exercised in fast tests instead of waiting for real
hardware to misbehave.

Design constraints:

* **No-op by default.**  Every hook in the library takes
  ``faults=None``; production paths pay a single ``is None`` check.
* **Deterministic.**  A :class:`FaultPlan` fires as a pure function of
  ``(site, index, attempt)``, so the same plan produces the same
  failure schedule on every run, at any worker count -- the same
  philosophy as the engine's RNG-block determinism.
* **Picklable.**  Plans travel into
  :class:`concurrent.futures.ProcessPoolExecutor` workers unchanged.

Injection sites are string constants (:class:`Site`); the call sites
are the evaluation worker, the checkpoint store, the dataset
serialisers, the chip tester, the authentication server and the
resilient serving front end (:mod:`repro.service`).

Example -- crash the pool worker handling chunk 2, once::

    plan = FaultPlan([FaultSpec(Site.ENGINE_CHUNK, kind="crash", at=2)])
    engine = EvaluationEngine(jobs=4, faults=plan)

The first attempt at chunk 2 raises :class:`InjectedWorkerCrash`; the
runtime retries and the second attempt succeeds.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Site",
    "FaultSpec",
    "FaultPlan",
    "FlakyResponder",
    "InjectedFault",
    "InjectedWorkerCrash",
    "InjectedCampaignAbort",
    "InjectedIOError",
    "FAULT_KINDS",
]


class InjectedFault(RuntimeError):
    """Base class of every exception raised by a fault plan."""


class InjectedWorkerCrash(InjectedFault):
    """A worker "crashed" mid-chunk (transient; the runtime retries it)."""


class InjectedCampaignAbort(InjectedFault):
    """A hard kill of the whole campaign (SIGKILL stand-in).

    The runtime deliberately does **not** retry this one -- it
    propagates, leaving the checkpoint directory behind exactly as a
    real ``kill -9`` would.  Tests use it to exercise resume.
    """


class InjectedIOError(OSError):
    """A transient I/O error (full disk, NFS hiccup) at a save/load site."""


class Site:
    """Injection-site names understood by the library's fault hooks."""

    #: Worker entry for one evaluation chunk (index = chunk index).
    ENGINE_CHUNK = "engine.chunk"
    #: Chunk payload about to be returned by a worker (corruptible).
    ENGINE_RESULT = "engine.result"
    #: Serialised chunk bytes about to be checkpointed (corruptible).
    CHUNK_FILE = "engine.chunk-file"
    #: Dataset serialisation (``CrpDataset``/``SoftResponseDataset.save``).
    DATASET_SAVE = "dataset.save"
    #: Dataset deserialisation.
    DATASET_LOAD = "dataset.load"
    #: Per-PUF soft-response readout on the chip tester (index = PUF).
    TESTER_READOUT = "tester.readout"
    #: Device response read during an authentication session.
    DEVICE_READ = "device.read"
    #: Admission of one request into the resilient authentication
    #: service (index = request sequence number).
    SERVICE_REQUEST = "service.request"
    #: One device-read attempt inside a supervised service session
    #: (index = the service's global read counter).
    SERVICE_READ = "service.read"
    #: One identification-codebook sync pass (index = the codebook's
    #: sync counter); crashes here model a rebuild dying mid-flight.
    CODEBOOK_SYNC = "codebook.sync"
    #: Codebook persistence (save *and* load; index = the codebook's
    #: persist counter).  ``corrupt`` specs damage the serialised bytes
    #: before they hit disk, ``io``/``abort`` specs kill the save before
    #: the atomic rename -- the previous generation must stay loadable.
    CODEBOOK_PERSIST = "codebook.persist"
    #: One step of the fleet-lifecycle driver (index = tick number);
    #: used by the chaos harness to kill maintenance work mid-tick.
    SERVICE_LIFECYCLE = "service.lifecycle"
    #: Shard-worker liveness beacon (index = shard index, attempt = the
    #: worker's spawn generation).  A ``hang`` spec stalls the worker's
    #: main loop without updating its heartbeat slot -- the supervisor
    #: must detect the silence and restart; a ``crash`` kills the
    #: worker process outright.
    SHARD_HEARTBEAT = "shard.heartbeat"
    #: One shard scoring pass (index = shard index, attempt = the
    #: dispatcher's request sequence number, so a fault heals after
    #: ``fail_attempts`` *requests* however many times the worker is
    #: respawned).  ``crash`` specs kill the worker process mid-query.
    SHARD_SCORE = "shard.score"
    #: Shared-memory attach on worker (re)spawn (index = shard index,
    #: attempt = spawn generation): ``crash`` here models a worker that
    #: dies before it ever serves, exercising the respawn + re-attach
    #: path.
    SHARD_ATTACH = "shard.attach"


#: Recognised values of :attr:`FaultSpec.kind`.
FAULT_KINDS = ("crash", "abort", "hang", "corrupt", "io", "device")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: *what* fires, *where* and *when*.

    Attributes
    ----------
    site:
        Injection site (one of the :class:`Site` constants).
    kind:
        ``"crash"``  -- raise :class:`InjectedWorkerCrash` (retriable);
        ``"abort"``  -- raise :class:`InjectedCampaignAbort` (fatal);
        ``"hang"``   -- sleep for :attr:`seconds` (trips timeouts);
        ``"corrupt"``-- damage the payload passed to
        :meth:`FaultPlan.corrupt` / :meth:`FaultPlan.corrupt_bytes`;
        ``"io"``     -- raise :class:`InjectedIOError`;
        ``"device"`` -- raise
        :class:`repro.core.authentication.DeviceReadError`.
    at:
        Index (chunk index, PUF index, call index -- whatever the site
        counts by) the fault is pinned to; ``None`` matches every index.
    fail_attempts:
        Number of *attempts* at the matching index that fail before the
        site succeeds.  ``1`` models a transient glitch healed by one
        retry; a large value models a persistent failure.
    seconds:
        Sleep duration for ``kind="hang"``.
    pool_only:
        Restrict the fault to process-pool workers, so in-process
        serial fallback succeeds (models a poisoned worker environment).
    """

    site: str
    kind: str = "crash"
    at: Optional[int] = None
    fail_attempts: int = 1
    seconds: float = 0.0
    pool_only: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.fail_attempts < 1:
            raise ValueError(
                f"fail_attempts must be >= 1, got {self.fail_attempts}"
            )

    def fires(self, site: str, index: int, attempt: int, in_worker: bool) -> bool:
        """Whether this spec fires for one ``(site, index, attempt)`` visit."""
        if site != self.site:
            return False
        if self.at is not None and index != self.at:
            return False
        if self.pool_only and not in_worker:
            return False
        return attempt < self.fail_attempts


class FaultPlan:
    """A deterministic schedule of injected faults.

    The plan is consulted through three hooks:

    * :meth:`check` -- raise/sleep at a site (crash, abort, hang, io,
      device faults);
    * :meth:`corrupt` -- damage a NumPy payload in flight;
    * :meth:`corrupt_bytes` -- damage serialised bytes before they hit
      disk.

    Call sites that know their attempt number (the engine runtime) pass
    it explicitly, which keeps firing decisions deterministic across
    process boundaries.  Call sites without a natural attempt counter
    (dataset save/load, device reads) omit it and the plan counts visits
    per ``(site, index)`` internally.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected FaultSpec, got {type(spec).__name__}")
        self._visits: Dict[Tuple[str, int], int] = {}

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.specs)!r})"

    def __reduce__(self):
        # Ship only the immutable schedule to worker processes; visit
        # counters are per-process state.
        return (FaultPlan, (self.specs,))

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def check(
        self,
        site: str,
        index: int = 0,
        *,
        attempt: Optional[int] = None,
        in_worker: bool = False,
    ) -> None:
        """Fire any matching raise/sleep fault for this visit.

        Raises the fault's exception (or sleeps, for hangs).  ``corrupt``
        specs never fire here -- they only act through the corruption
        hooks.
        """
        attempt = self._attempt(site, index, attempt)
        for spec in self.specs:
            if spec.kind == "corrupt" or not spec.fires(site, index, attempt, in_worker):
                continue
            if spec.kind == "hang":
                time.sleep(spec.seconds)
            elif spec.kind == "abort":
                raise InjectedCampaignAbort(
                    f"injected campaign abort at {site}[{index}] attempt {attempt}"
                )
            elif spec.kind == "io":
                raise InjectedIOError(
                    f"injected transient I/O error at {site}[{index}] "
                    f"attempt {attempt}"
                )
            elif spec.kind == "device":
                from repro.core.authentication import DeviceReadError

                raise DeviceReadError(
                    f"injected device read failure at {site}[{index}] "
                    f"attempt {attempt}"
                )
            else:  # crash
                raise InjectedWorkerCrash(
                    f"injected worker crash at {site}[{index}] attempt {attempt}"
                )

    def corrupt(
        self,
        site: str,
        payload: np.ndarray,
        index: int = 0,
        *,
        attempt: Optional[int] = None,
        in_worker: bool = False,
    ) -> np.ndarray:
        """Return *payload*, damaged if a ``corrupt`` spec fires.

        Numeric payloads get an out-of-range spike written into their
        first element -- guaranteed to trip the runtime's range
        validation whatever the legitimate values are.
        """
        attempt = self._attempt(site, index, attempt)
        for spec in self.specs:
            if spec.kind == "corrupt" and spec.fires(site, index, attempt, in_worker):
                damaged = np.array(payload, copy=True)
                flat = damaged.reshape(-1)
                if flat.size:
                    if np.issubdtype(damaged.dtype, np.integer):
                        flat[0] = np.iinfo(damaged.dtype).max
                    else:
                        flat[0] = np.finfo(damaged.dtype).max
                return damaged
        return payload

    def corrupt_bytes(
        self,
        site: str,
        data: bytes,
        index: int = 0,
        *,
        attempt: Optional[int] = None,
    ) -> bytes:
        """Return *data* with a flipped byte if a ``corrupt`` spec fires."""
        attempt = self._attempt(site, index, attempt)
        for spec in self.specs:
            if spec.kind == "corrupt" and spec.fires(site, index, attempt, False):
                if not data:
                    return data
                mid = len(data) // 2
                return data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1 :]
        return data

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _attempt(self, site: str, index: int, attempt: Optional[int]) -> int:
        if attempt is not None:
            return int(attempt)
        key = (site, int(index))
        visit = self._visits.get(key, 0)
        self._visits[key] = visit + 1
        return visit


class FlakyResponder:
    """Responder wrapper whose device reads fail per a fault plan.

    Wraps any :class:`repro.core.authentication.Responder`; each
    :meth:`xor_response` call first consults *plan* at
    :attr:`Site.DEVICE_READ` (index = call number), so a spec like
    ``FaultSpec(Site.DEVICE_READ, kind="device", at=None,
    fail_attempts=2)`` makes the first two sessions fail and later ones
    succeed -- exactly the transient-device scenario the server's retry
    policy exists for.
    """

    def __init__(self, responder, plan: FaultPlan) -> None:
        self._responder = responder
        self._plan = plan
        self._reads = 0
        self.chip_id = getattr(responder, "chip_id", None)

    @property
    def reads(self) -> int:
        """Total device read attempts, including failed ones."""
        return self._reads

    def xor_response(self, challenges, condition=None):
        self._reads += 1
        # The plan counts visits internally, so ``fail_attempts=N``
        # reads as "the first N device reads fail".
        self._plan.check(Site.DEVICE_READ)
        if condition is None:
            return self._responder.xor_response(challenges)
        return self._responder.xor_response(challenges, condition)

"""Terminal visualisation helpers (pure ASCII, zero dependencies).

The paper's figures are histograms, scatter-ish threshold plots and
log-scale decay curves; these helpers render serviceable terminal
versions so the examples and CLI can *show* results, not just print
numbers.  Nothing here is load-bearing for the science -- benchmarks
archive raw series as JSON for real plotting.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ascii_histogram", "ascii_curve", "ascii_decay_table"]


def ascii_histogram(
    values: np.ndarray,
    *,
    bins: int = 20,
    value_range: Tuple[float, float] = (0.0, 1.0),
    width: int = 50,
    label_format: str = "{:5.2f}",
) -> str:
    """Render a histogram of *values* as bar rows.

    Parameters
    ----------
    values:
        1-D data (e.g. soft responses).
    bins:
        Number of equal-width bins over *value_range*.
    value_range:
        Histogram support (values outside are clipped into the edge
        bins, matching the counter semantics of soft responses).
    width:
        Character width of the largest bar.
    label_format:
        Format applied to each bin centre.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got ndim={values.ndim}")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    low, high = value_range
    if not low < high:
        raise ValueError(f"empty value_range {value_range}")
    clipped = np.clip(values, low, high)
    counts, edges = np.histogram(clipped, bins=bins, range=(low, high))
    total = max(counts.sum(), 1)
    peak = max(counts.max(), 1)
    rows = []
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        center = (left + right) / 2.0
        bar = "#" * int(round(width * count / peak))
        rows.append(
            f"{label_format.format(center)} | {bar:<{width}} {count / total:6.1%}"
        )
    return "\n".join(rows)


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    height: int = 12,
    width: int = 60,
    y_range: Optional[Tuple[float, float]] = None,
    marker: str = "*",
) -> str:
    """Render a scatter/curve of (xs, ys) on a character grid."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or len(xs) == 0:
        raise ValueError("xs and ys must be matching non-empty 1-D sequences")
    if height < 2 or width < 2:
        raise ValueError("height and width must be >= 2")
    x_low, x_high = float(xs.min()), float(xs.max())
    if y_range is None:
        y_low, y_high = float(ys.min()), float(ys.max())
    else:
        y_low, y_high = y_range
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
        row = int(round((y - y_low) / (y_high - y_low) * (height - 1)))
        grid[height - 1 - row][min(max(col, 0), width - 1)] = marker
    lines = []
    for index, row in enumerate(grid):
        y_value = y_high - index * (y_high - y_low) / (height - 1)
        lines.append(f"{y_value:8.3g} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9} {x_low:<10.4g}{'':{max(width - 20, 1)}}{x_high:>10.4g}")
    return "\n".join(lines)


def ascii_decay_table(
    fractions_by_n: Dict[int, float],
    *,
    reference_base: Optional[float] = None,
    width: int = 40,
) -> str:
    """Render a Fig.-3/12-style decay as log-scaled bars.

    Bars are proportional to ``log10(fraction)`` relative to the
    smallest plotted fraction, which makes an exponential decay render
    as a straight staircase.  ``reference_base`` adds a ``base**n``
    column for comparison.
    """
    if not fractions_by_n:
        raise ValueError("fractions_by_n must not be empty")
    ns = sorted(fractions_by_n)
    fractions = np.array([fractions_by_n[n] for n in ns], dtype=np.float64)
    positive = fractions[fractions > 0]
    floor = positive.min() if positive.size else 1e-12
    logs = np.log10(np.maximum(fractions, floor / 10.0))
    log_low, log_high = logs.min(), max(logs.max(), logs.min() + 1e-9)
    rows = []
    for n, fraction, log_value in zip(ns, fractions, logs):
        bar_length = int(round(width * (log_value - log_low) / (log_high - log_low)))
        reference = (
            f"  (ref {reference_base**n:8.3%})" if reference_base else ""
        )
        rows.append(f"n={n:>2} {fraction:9.4%} |{'#' * bar_length}{reference}")
    return "\n".join(rows)

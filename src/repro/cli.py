"""Command-line interface to the reproduction's main experiments.

Lets a user exercise the library without writing Python::

    repro-puf stability  --n-pufs 10 --challenges 50000
    repro-puf enroll     --n-pufs 4 --corners
    repro-puf attack     --n-pufs 4 --train 20000
    repro-puf auth       --n-pufs 4 --sessions 20 --corners
    repro-puf identify   --chips 10 --probes 50
    repro-puf aging      --n-pufs 4 --amplitude 0.3
    repro-puf serve-sim  --report report.json --audit audit.jsonl
    repro-puf lifecycle-sim --ticks 12 --chaos --report life.json
    repro-puf revoke     db-dir chip-3 --reason "key compromise"
    repro-puf bench      run --tier smoke --compare

(Installed as ``repro-puf``; also runnable as ``python -m repro.cli``.)
Each subcommand prints a compact report and exits non-zero on failure,
so the CLI doubles as a smoke test in CI pipelines.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.stability import stable_fraction_by_n
from repro.attacks.features import attack_matrices
from repro.attacks.harness import collect_stable_xor_crps
from repro.attacks.mlp import MlpClassifier
from repro.core.enrollment import enroll_chip
from repro.core.server import AuthenticationServer
from repro.crp.challenges import random_challenges
from repro.kernels import BackendUnavailableError, set_backend
from repro.silicon.aging import AgingModel, age_chip
from repro.silicon.chip import PufChip
from repro.silicon.environment import paper_corner_grid
from repro.silicon.xorpuf import XorArbiterPuf

__all__ = ["main", "build_parser"]


def _jobs_arg(text: str) -> int:
    """``--jobs`` validator: a non-negative int (0 = all cores)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects an integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = all cores), got {value}"
        )
    return value


def _chunk_size_arg(text: str) -> int:
    """``--chunk-size`` validator: a positive int."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--chunk-size expects an integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--chunk-size must be >= 1, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-puf`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-puf",
        description="XOR arbiter PUF reproduction experiments (DAC'17).",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="worker processes for measurement campaigns "
             "(0 = all cores; results are identical at any value)",
    )
    parser.add_argument(
        "--chunk-size", type=_chunk_size_arg, default=None,
        help="challenges per evaluation-engine chunk "
             "(bounds peak memory; default 65536)",
    )
    parser.add_argument(
        "--kernel-backend", choices=("numpy", "numba", "auto"), default=None,
        help="kernel backend for the hot loops: numba (JIT-fused, "
             "requires the [fast] extra), numpy (always available), or "
             "auto-detect; defaults to the REPRO_KERNEL_BACKEND "
             "environment variable / auto-detection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_resume(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--resume", metavar="CAMPAIGN_DIR", default=None,
            help="checkpoint directory: chunk results are journalled "
                 "there, and re-running with the same directory resumes "
                 "an interrupted campaign from the last good chunk "
                 "(bit-identical at any --jobs/--chunk-size)",
        )

    p = sub.add_parser("stability", help="stable-CRP fraction vs XOR width (Fig. 3)")
    p.add_argument("--n-pufs", type=int, default=10)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--challenges", type=int, default=20_000)
    p.add_argument("--trials", type=int, default=100_000)
    add_resume(p)

    p = sub.add_parser("enroll", help="run the Fig.-6 enrollment and print the record")
    p.add_argument("--n-pufs", type=int, default=4)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--train", type=int, default=5000)
    p.add_argument("--validation", type=int, default=20_000)
    p.add_argument("--corners", action="store_true",
                   help="validate betas across the 9 V/T corners")
    p.add_argument("--save", metavar="PATH", help="write the record to an .npz file")
    add_resume(p)

    p = sub.add_parser("attack", help="MLP modeling attack on stable CRPs (Fig. 4)")
    p.add_argument("--n-pufs", type=int, default=4)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--train", type=int, default=10_000)
    p.add_argument("--pool", type=int, default=60_000)
    add_resume(p)

    p = sub.add_parser("auth", help="zero-HD authentication sessions (Fig. 7)")
    p.add_argument("--n-pufs", type=int, default=4)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--sessions", type=int, default=10)
    p.add_argument("--challenges", type=int, default=64)
    p.add_argument("--max-attempts", type=int, default=1,
                   help="device-read attempts per session (fresh "
                        "challenges on every retry)")
    p.add_argument("--corners", action="store_true",
                   help="rotate sessions through the 9 V/T corners")

    p = sub.add_parser(
        "identify",
        help="1:N identification sweep over the bit-packed codebook plane",
    )
    p.add_argument("--chips", type=int, default=5, help="enrolled fleet size")
    p.add_argument("--n-pufs", type=int, default=4)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--challenges", type=int, default=64,
                   help="identification block length per identity")
    p.add_argument("--train", type=int, default=2000)
    p.add_argument("--validation", type=int, default=8000)
    p.add_argument("--probes", type=int, default=20,
                   help="devices presented for identification "
                        "(fleet chips round-robin, plus one stranger)")
    p.add_argument("--save-db", metavar="DIR", default=None,
                   help="persist the database + codebook to this directory")

    p = sub.add_parser(
        "serve-sim",
        help="replay drifting, faulted traffic through the resilient "
             "service and write a reliability report",
    )
    p.add_argument("--chips", type=int, default=5, help="fleet size")
    p.add_argument("--n-pufs", type=int, default=4)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--nominal-steps", type=int, default=80)
    p.add_argument("--ramp-steps", type=int, default=150)
    p.add_argument("--corner-steps", type=int, default=80)
    p.add_argument("--return-steps", type=int, default=80)
    p.add_argument("--fault-chip", type=int, default=0,
                   help="index of the chip with a flaky radio "
                        "(-1 disables fault injection)")
    p.add_argument("--fault-reads", type=int, default=12,
                   help="how many of that chip's first device reads fail")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the reliability report JSON here")
    p.add_argument("--audit", metavar="PATH", default=None,
                   help="write the structured audit log (JSONL) here")
    p.add_argument("--max-nominal-frr", type=float, default=0.01,
                   help="fail (exit 1) if the nominal-phase FRR exceeds this")
    p.add_argument("--min-corner-availability", type=float, default=0.95,
                   help="fail (exit 1) if healthy-chip corner availability "
                        "falls below this")
    p.add_argument("--clients", type=int, default=0,
                   help="replay the trace through the micro-batching front "
                        "end with this many concurrent clients (0 = "
                        "sequential); gates are unchanged")

    p = sub.add_parser(
        "lifecycle-sim",
        help="replay a simulated fleet life (churn, aging storms, "
             "revocation waves, persistence chaos) and gate the report",
    )
    p.add_argument("--chips", type=int, default=6, help="initial fleet size")
    p.add_argument("--n-pufs", type=int, default=4)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--ticks", type=int, default=12,
                   help="lifecycle ticks (a year of monthly ticks by default)")
    p.add_argument("--hours-per-tick", type=float, default=730.0)
    p.add_argument("--requests-per-chip", type=int, default=4)
    p.add_argument("--max-stale-rows", type=int, default=8,
                   help="deferred-codebook staleness bound (rows)")
    p.add_argument("--chaos", action="store_true",
                   help="inject the seeded fault plan: a killed maintenance "
                        "tick, a mid-flight codebook sync crash, and corrupt "
                        "+ failed codebook persists")
    p.add_argument("--workdir", metavar="DIR", default=None,
                   help="exercise persistence each tick (save + reload the "
                        "database here); required for persist-site chaos")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the lifecycle report JSON here")
    p.add_argument("--max-nominal-frr", type=float, default=0.02,
                   help="fail (exit 1) if active-fleet FRR exceeds this")
    p.add_argument("--min-availability", type=float, default=0.95,
                   help="fail (exit 1) if active-fleet availability "
                        "falls below this")
    p.add_argument("--sharded", action="store_true",
                   help="serve identification traffic through the inline "
                        "sharded fleet plane (exercises shard refresh and "
                        "re-layout under churn)")
    p.add_argument("--shards", type=int, default=2,
                   help="shard count for --sharded")
    p.add_argument("--clients", type=int, default=0,
                   help="pump all traffic through the micro-batching front "
                        "end with this many concurrent clients (0 = "
                        "sequential); gates are unchanged")

    p = sub.add_parser(
        "serve-shards",
        help="stand up a supervised shard fleet (real worker processes) "
             "over a synthetic enrolled population, replay identification "
             "traffic -- optionally under injected worker chaos -- and "
             "gate on zero wrong identifications + full final coverage",
    )
    p.add_argument("--chips", type=int, default=6, help="enrolled identities")
    p.add_argument("--n-pufs", type=int, default=4)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--batches", type=int, default=4,
                   help="identification batches to serve")
    p.add_argument("--n-challenges", type=int, default=64,
                   help="identification block length per identity")
    p.add_argument("--chaos", action="store_true",
                   help="kill one worker mid-query and hang another: the "
                        "fleet must degrade (coverage < 1, never a wrong "
                        "id) and recover to full coverage")
    p.add_argument("--request-timeout", type=float, default=5.0)
    p.add_argument("--clients", type=int, default=0,
                   help="serve each batch as this many concurrent client "
                        "submissions through the micro-batching front end "
                        "(AuthenticationService + BatchingFrontend over the "
                        "fleet) instead of one direct dispatcher call; the "
                        "degraded-not-wrong gates are unchanged")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the serve report JSON here")

    p = sub.add_parser(
        "revoke",
        help="revoke an enrolled identity in a persisted database",
    )
    p.add_argument("database", metavar="DIR",
                   help="database directory written by `identify --save-db` "
                        "or AuthenticationServer.save_database")
    p.add_argument("chip_id", help="identity to revoke")
    p.add_argument("--reason", default="",
                   help="free-text reason recorded in the revocation table")

    from repro.bench.cli import add_bench_subparser

    add_bench_subparser(sub)

    p = sub.add_parser("aging", help="selected-CRP flips over an aging life")
    p.add_argument("--n-pufs", type=int, default=4)
    p.add_argument("--n-stages", type=int, default=32)
    p.add_argument("--amplitude", type=float, default=0.3)
    p.add_argument("--selected", type=int, default=10_000)

    p = sub.add_parser(
        "figure",
        help="run a paper-figure experiment by name and print its JSON",
    )
    p.add_argument(
        "name",
        choices=sorted(_FIGURE_RUNNERS),
        help="experiment to run (see repro.experiments)",
    )
    p.add_argument(
        "--full", action="store_true",
        help="paper-scale sizes instead of quick defaults",
    )
    add_resume(p)
    return parser


def _cmd_stability(args: argparse.Namespace) -> int:
    from repro.experiments.stability import make_engine

    xor_puf = XorArbiterPuf.create(args.n_pufs, args.n_stages, seed=args.seed)
    challenges = random_challenges(args.challenges, args.n_stages, seed=args.seed + 1)
    engine = make_engine(args.jobs, args.chunk_size, args.resume)
    per_puf = engine.measure_xor_constituents(
        xor_puf, challenges, args.trials, seed=args.seed + 2
    )
    fractions = stable_fraction_by_n(per_puf)
    from repro.viz import ascii_decay_table

    print(ascii_decay_table(fractions, reference_base=0.8))
    return 0


def _cmd_enroll(args: argparse.Namespace) -> int:
    chip = PufChip.create(args.n_pufs, args.n_stages, seed=args.seed, chip_id="cli")
    conditions = paper_corner_grid() if args.corners else None
    record = enroll_chip(
        chip,
        n_enroll_challenges=args.train,
        n_validation_challenges=args.validation,
        validation_conditions=conditions,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        checkpoint_dir=args.resume,
        seed=args.seed + 1,
    )
    print(f"enrolled {chip.chip_id}: betas {record.betas}")
    for index, pair in enumerate(record.adjusted_pairs):
        print(f"  PUF #{index}: {pair}")
    test = random_challenges(20_000, args.n_stages, seed=args.seed + 2)
    print(f"predicted stable fraction: "
          f"{record.selector().predicted_stable_fraction(test):.1%}")
    if args.save:
        record.save(args.save)
        print(f"record written to {args.save}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    xor_puf = XorArbiterPuf.create(args.n_pufs, args.n_stages, seed=args.seed)
    train, test = collect_stable_xor_crps(
        xor_puf, args.pool, 100_000,
        jobs=args.jobs, chunk_size=args.chunk_size,
        checkpoint_dir=args.resume, seed=args.seed + 1,
    )
    size = min(args.train, len(train))
    train_x, train_y, test_x, test_y = attack_matrices(
        train.subset(np.arange(size)), test
    )
    attack = MlpClassifier(seed=args.seed + 2, max_iter=300).fit(train_x, train_y)
    accuracy = attack.score(test_x, test_y)
    print(f"stable CRPs: train {len(train)} (used {size}), test {len(test)}")
    print(f"MLP 35-25-25 accuracy: {accuracy:.2%} "
          f"({1000 * attack.fit_seconds_ / size:.3f} ms/CRP)")
    return 0


def _cmd_auth(args: argparse.Namespace) -> int:
    chip = PufChip.create(args.n_pufs, args.n_stages, seed=args.seed, chip_id="cli")
    server = AuthenticationServer()
    server.enroll(
        chip,
        seed=args.seed + 1,
        n_enroll_challenges=5000,
        n_validation_challenges=20_000,
        validation_conditions=paper_corner_grid() if args.corners else None,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
    )
    corners = paper_corner_grid()
    failures = 0
    for session in range(args.sessions):
        condition = corners[session % 9] if args.corners else corners[4]
        result = server.authenticate(
            chip, n_challenges=args.challenges,
            condition=condition, seed=args.seed + 10 + session,
            max_attempts=args.max_attempts,
        )
        print(f"session {session}: {result} "
              f"[{result.attempts}/{args.max_attempts} attempts]")
        failures += not result.approved
    print(f"{args.sessions - failures}/{args.sessions} sessions approved")
    return 1 if failures else 0


def _cmd_identify(args: argparse.Namespace) -> int:
    import time

    from repro.silicon.chip import fabricate_lot

    lot = fabricate_lot(args.chips, args.n_pufs, args.n_stages, seed=args.seed)
    server = AuthenticationServer()
    for index, chip in enumerate(lot):
        server.enroll(
            chip,
            seed=args.seed + 1 + index,
            n_enroll_challenges=args.train,
            n_validation_challenges=args.validation,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
        )
    built = time.perf_counter()
    server.codebook(args.challenges, seed=args.seed)
    print(f"codebook: {args.chips} identities x {args.challenges} challenges "
          f"materialized in {time.perf_counter() - built:.2f}s")

    probes = [lot[i % len(lot)] for i in range(args.probes)]
    probes.append(PufChip.create(
        args.n_pufs, args.n_stages, seed=args.seed + 4242, chip_id="stranger",
    ))
    start = time.perf_counter()
    results = server.identify_many(probes, n_challenges=args.challenges)
    elapsed = time.perf_counter() - start
    correct = sum(
        result.chip_id == probe.chip_id
        for probe, result in zip(probes[:-1], results[:-1])
    )
    print(f"{correct}/{len(probes) - 1} fleet devices identified "
          f"({len(probes) / elapsed:,.0f} identifications/sec)")
    stranger = results[-1]
    print(f"stranger: identified as {stranger.chip_id} "
          f"(best match {stranger.match_fraction:.1%})")
    if args.save_db:
        server.save_database(args.save_db)
        print(f"database + codebook written to {args.save_db}")
    failures = correct < len(probes) - 1 or stranger.chip_id is not None
    return 1 if failures else 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.service import run_serve_sim

    report = run_serve_sim(
        n_chips=args.chips,
        n_xors=args.n_pufs,
        n_stages=args.n_stages,
        # Offset so the default CLI seed (0) lands on run_serve_sim's
        # validated default fleet (5).
        seed=args.seed + 5,
        nominal_steps=args.nominal_steps,
        ramp_steps=args.ramp_steps,
        corner_steps=args.corner_steps,
        return_steps=args.return_steps,
        fault_chip=None if args.fault_chip < 0 else args.fault_chip,
        fault_failed_reads=args.fault_reads,
        clients=args.clients,
        report_path=args.report,
        audit_path=args.audit,
        progress=print,
    )
    print()
    print(f"{'phase':>8} {'requests':>9} {'availability':>13} {'FRR':>8}")
    for phase in ("nominal", "ramp", "corner", "return"):
        if phase not in report.phases:
            continue
        m = report.phases[phase]
        print(f"{phase:>8} {m['requests']:>9.0f} {m['availability']:>12.1%} "
              f"{m['frr']:>8.1%}")
    print(f"ladder: {sum(len(m) for m in report.rung_moves.values())} moves, "
          f"flagged for re-tightening: {', '.join(report.flagged_chips) or 'none'}")
    print(f"breaker: opened={report.breaker_opened} "
          f"recovered={report.breaker_recovered}")
    print(f"no challenge replayed: {report.no_replay}")
    failures = []
    if not report.no_replay:
        failures.append("challenge replay detected")
    if report.nominal_frr > args.max_nominal_frr:
        failures.append(
            f"nominal FRR {report.nominal_frr:.1%} > "
            f"{args.max_nominal_frr:.1%}"
        )
    if report.corner_availability < args.min_corner_availability:
        failures.append(
            f"corner availability {report.corner_availability:.1%} < "
            f"{args.min_corner_availability:.1%}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_lifecycle_sim(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan, FaultSpec, Site
    from repro.service import LifecycleConfig, run_lifecycle_sim

    config = LifecycleConfig(
        n_chips=args.chips,
        n_xors=args.n_pufs,
        n_stages=args.n_stages,
        ticks=args.ticks,
        hours_per_tick=args.hours_per_tick,
        requests_per_chip=args.requests_per_chip,
        max_stale_rows=args.max_stale_rows,
        max_nominal_frr=args.max_nominal_frr,
        min_availability=args.min_availability,
        sharded=args.sharded,
        n_shards=args.shards,
        clients=args.clients,
    )
    faults = None
    if args.chaos:
        faults = FaultPlan([
            FaultSpec(Site.SERVICE_LIFECYCLE, kind="crash", at=2),
            FaultSpec(Site.CODEBOOK_SYNC, kind="crash", at=1),
            FaultSpec(Site.CODEBOOK_PERSIST, kind="corrupt", at=2),
            FaultSpec(Site.CODEBOOK_PERSIST, kind="io", at=4),
        ])
    report = run_lifecycle_sim(
        config,
        # Offset so the default CLI seed (0) lands on the sim's
        # validated default fleet (7).
        seed=args.seed + 7,
        faults=faults,
        workdir=args.workdir,
        report_path=args.report,
        progress=print,
    )
    print()
    print(f"fleet: {report.enrolled_total} enrolled, "
          f"{report.revoked_total} revoked, {report.retightens} re-tightens "
          f"over {report.simulated_hours:,.0f} simulated hours")
    print(f"traffic: {report.n_requests} requests, "
          f"active-fleet FRR {report.frr:.1%}, "
          f"availability {report.availability:.1%}")
    print(f"revoked probes: {report.revoked_probes} presented, "
          f"{report.revoked_denials} denied, "
          f"{report.revoked_approvals} approved")
    print(f"codebook: {report.codebook.get('rebuilds', 0)} row rebuilds, "
          f"{report.codebook.get('restacks', 0)} restacks, "
          f"{report.codebook.get('row_writes', 0)} in-place writes; "
          f"worst served staleness {report.max_served_stale_rows} rows")
    print(f"chaos: {report.maintenance_crashes} maintenance kills, "
          f"{report.sync_crashes} sync crashes, "
          f"{report.persist_failures}/{report.persist_saves} persists "
          f"failed, {report.corrupt_recoveries} corrupt codebooks rebuilt")
    print(f"no challenge replayed: {report.no_replay}")
    fleet = report.params.get("fleet")
    if fleet:
        print(f"fleet plane: {fleet['n_shards']} shards, "
              f"min coverage {fleet['min_coverage']:.3f}, "
              f"events {fleet['events']}")
    failures = [
        f"{name}: {gate['value']} vs bound {gate['bound']}"
        for name, gate in report.gates.items()
        if not gate["ok"]
    ]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_serve_shards(args: argparse.Namespace) -> int:
    import json as json_module
    from pathlib import Path

    from repro.core.server import AuthenticationServer
    from repro.faults import FaultPlan, FaultSpec, Site
    from repro.service.fleet import FleetConfig, ShardDispatcher
    from repro.silicon.chip import fabricate_lot

    lot = fabricate_lot(args.chips, args.n_pufs, args.n_stages,
                        seed=args.seed + 160)
    server = AuthenticationServer()
    for index, chip in enumerate(lot):
        server.enroll(chip, seed=args.seed + 161 + index,
                      n_enroll_challenges=1200,
                      n_validation_challenges=5000)
    print(f"enrolled {args.chips} chips; partitioning into "
          f"{args.shards} shard(s)")

    faults = None
    if args.chaos:
        # Request 1 kills whoever serves shard 0 mid-query; the next
        # spawn generation of shard 1's worker stalls its heartbeat.
        # Both must be detected, restarted, and healed.
        faults = FaultPlan([
            FaultSpec(Site.SHARD_SCORE, kind="crash", at=0, fail_attempts=2),
            FaultSpec(Site.SHARD_SCORE, kind="hang", at=1, fail_attempts=3,
                      seconds=max(30.0, 4 * args.request_timeout)),
        ])

    config = FleetConfig(
        n_shards=args.shards,
        n_challenges=args.n_challenges,
        request_timeout=args.request_timeout,
        heartbeat_timeout=max(1.0, args.request_timeout / 2),
    )
    wrong = 0
    batches = []
    frontend_stats = None
    with ShardDispatcher(server, config, seed=args.seed + 173,
                         faults=faults) as dispatcher:
        print(f"fleet up: {dispatcher.shard_states()}")
        frontend = None
        if args.clients:
            from repro.service import (
                AuthenticationService,
                BatchingFrontend,
                FrontendConfig,
                ServiceConfig,
            )

            # The full serving stack: concurrent client submissions ->
            # micro-batching front end -> service -> dispatcher
            # submit/flush -> shard round-trip.  Under --chaos this is
            # the degraded-not-wrong contract exercised end to end.
            service = AuthenticationService(
                server, ServiceConfig(n_challenges=args.n_challenges),
                seed=args.seed + 173,
            )
            service.attach_fleet(dispatcher)
            frontend = BatchingFrontend(
                service,
                FrontendConfig(
                    max_batch=args.clients,
                    max_pending=max(4 * args.clients, 64),
                ),
            )
            print(f"micro-batching front end: {args.clients} "
                  f"concurrent clients")
        for batch in range(args.batches):
            if frontend is not None:
                futures = [frontend.submit_identify(chip) for chip in lot]
                results = [future.result() for future in futures]
            else:
                results = dispatcher.identify_many(lot)
            hits = sum(
                1 for chip, r in zip(lot, results)
                if r.chip_id == chip.chip_id
            )
            wrong += sum(
                1 for chip, r in zip(lot, results)
                if r.chip_id is not None and r.chip_id != chip.chip_id
            )
            coverage = min(r.coverage for r in results)
            batches.append({"batch": batch, "hits": hits,
                            "coverage": coverage})
            print(f"batch {batch}: {hits}/{len(lot)} identified, "
                  f"coverage {coverage:.3f}")
        if frontend is not None:
            frontend_stats = frontend.stats
            frontend.close()
        final_coverage = batches[-1]["coverage"] if batches else 0.0
        status = dispatcher.status()
    print(f"events: {status['events']}")
    failures = []
    if wrong:
        failures.append(f"{wrong} WRONG identification(s)")
    if final_coverage < 1.0:
        failures.append(f"final coverage {final_coverage:.3f} < 1.0")
    report = {
        "chips": args.chips,
        "shards": args.shards,
        "batches": batches,
        "chaos": args.chaos,
        "clients": args.clients,
        "frontend": frontend_stats,
        "wrong_identifications": wrong,
        "final_coverage": final_coverage,
        "fleet": status,
        "passed": not failures,
    }
    if args.report:
        Path(args.report).write_text(
            json_module.dumps(report, indent=2, default=float) + "\n",
            encoding="utf-8",
        )
        print(f"serve report -> {args.report}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_revoke(args: argparse.Namespace) -> int:
    from repro.core.lifecycle import LifecycleError, RevokedChipError
    from repro.core.server import UnknownChipError

    try:
        server = AuthenticationServer.load_database(args.database)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        record = server.revoke(args.chip_id, reason=args.reason)
    except (UnknownChipError, LifecycleError, RevokedChipError) as exc:
        # KeyError.__str__ repr-quotes its message; unwrap it.
        detail = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {detail}", file=sys.stderr)
        return 1
    server.save_database(args.database)
    print(f"revoked {record.chip_id} at epoch {record.epoch}"
          f" ({record.reason or 'no reason recorded'})")
    print(f"active identities remaining: "
          f"{', '.join(server.active_ids) or 'none'}")
    return 0


def _cmd_aging(args: argparse.Namespace) -> int:
    chip = PufChip.create(args.n_pufs, args.n_stages, seed=args.seed, chip_id="cli")
    record = enroll_chip(
        chip, n_enroll_challenges=5000, n_validation_challenges=20_000,
        seed=args.seed + 1,
    )
    challenges, predicted = record.selector().select(args.selected, seed=args.seed + 2)
    model = AgingModel(amplitude=args.amplitude)
    print(f"{'hours':>9} {'flip rate':>10}")
    for hours in (0.0, 8760.0, 43_800.0, 87_600.0):
        aged = age_chip(chip, hours, model, seed=args.seed + 3)
        flips = (aged.xor_response(challenges) != predicted).mean()
        print(f"{hours:>9.0f} {flips:>10.4%}")
    return 0


#: Figure experiments runnable via ``repro-puf figure <name>``:
#: name -> (runner import path, quick kwargs, paper-scale kwargs).
_FIGURE_RUNNERS = {
    "fig02": ("run_fig02", {"n_challenges": 50_000}, {"n_challenges": 1_000_000}),
    "fig03": ("run_fig03", {"n_challenges": 20_000}, {"n_challenges": 1_000_000}),
    "fig08": ("run_fig08", {}, {}),
    "fig09": ("run_fig09", {"n_test": 30_000}, {"n_test": 1_000_000}),
    "fig10": ("run_fig10", {"n_test": 30_000}, {"n_test": 1_000_000}),
    "fig11": ("run_fig11", {"n_test": 15_000}, {"n_test": 1_000_000}),
    "fig12": ("run_fig12", {"n_eval": 20_000, "n_validation": 10_000},
              {"n_eval": 1_000_000}),
}

#: Figure runners that accept the engine's ``jobs``/``chunk_size`` knobs.
_ENGINE_FIGURES = frozenset({"fig02", "fig03", "fig12"})


def _cmd_figure(args: argparse.Namespace) -> int:
    import json

    import repro.experiments as experiments

    runner_name, quick, full = _FIGURE_RUNNERS[args.name]
    runner = getattr(experiments, runner_name)
    kwargs = dict(full if args.full else quick)
    kwargs["seed"] = args.seed
    if args.name in _ENGINE_FIGURES:
        kwargs["jobs"] = args.jobs
        kwargs["chunk_size"] = args.chunk_size
        kwargs["checkpoint_dir"] = args.resume
    elif args.resume is not None:
        print(
            f"error: figure {args.name!r} does not run through the "
            f"evaluation engine; --resume is only supported for "
            f"{', '.join(sorted(_ENGINE_FIGURES))}",
            file=sys.stderr,
        )
        return 2
    result = runner(**kwargs)
    print(json.dumps(result, indent=2, default=float))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.cli import cmd_bench

    return cmd_bench(args)


_COMMANDS = {
    "bench": _cmd_bench,
    "stability": _cmd_stability,
    "enroll": _cmd_enroll,
    "attack": _cmd_attack,
    "auth": _cmd_auth,
    "identify": _cmd_identify,
    "serve-sim": _cmd_serve_sim,
    "lifecycle-sim": _cmd_lifecycle_sim,
    "serve-shards": _cmd_serve_shards,
    "revoke": _cmd_revoke,
    "aging": _cmd_aging,
    "figure": _cmd_figure,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.kernel_backend is not None:
        try:
            set_backend(args.kernel_backend)
        except BackendUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

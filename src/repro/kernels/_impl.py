"""Loop-level kernel implementations shared by the numba backend.

Every function here is written in *nopython-compatible* style: plain
``for`` loops over preallocated numpy arrays, scalar math from
:mod:`math`, no Python objects in the hot path.  The numba backend
compiles these exact functions with ``numba.njit`` (see
:mod:`repro.kernels.numba_backend`); without numba they remain ordinary
Python functions, which is how the cross-backend equivalence suite in
``tests/kernels`` verifies the *semantics* of the compiled kernels on
any environment -- the pure-Python execution and the jitted execution
run the same statements in the same order.

``prange`` resolves to :func:`numba.prange` when numba is installed and
to the built-in :func:`range` otherwise, so the parallel loops stay
importable (and testable, at small sizes) everywhere.

Numerical contract
------------------
* Integer/bit kernels (parity suffix products over exact +/-1 values,
  XOR + popcount scoring) are **bit-identical** to the NumPy reference.
* Float kernels accumulate dot products sequentially (index order)
  while BLAS uses blocked/pairwise summation, so deltas agree with the
  NumPy path only to a few ULP.  Hard responses (``delta > 0``) are
  identical unless a delta's magnitude is within that rounding slack of
  zero -- below ``64 * eps`` relative to the sum of term magnitudes --
  which random manufacturing weights do not produce in practice.
* :func:`ndtr_scalar` mirrors the branch structure of Cephes ``ndtr``
  (the scipy kernel) on top of libm ``erf``/``erfc``.  libm and Cephes
  disagree slightly, most in the far tail: values agree with
  ``scipy.special.ndtr`` to relative error <= 1e-13 over the full
  double range, and to <= ~32 ULP for arguments ``|x| <= 6`` (the
  region that decides counter values at any realistic T).
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
except ImportError:  # pragma: no cover - the default environment
    prange = range

__all__ = [
    "POPCOUNT_LUT",
    "ndtr_scalar",
    "parity_fill",
    "ndtr_fill",
    "grid_soft_probabilities",
    "grid_noise_free",
    "xor_noise_free",
    "packed_score_rows",
    "packed_score_matrix",
]

#: 1 / sqrt(2), the Cephes ``M_SQRT1_2`` constant.
_SQRT1_2 = 0.7071067811865476

#: Per-byte popcount table.  Module-level so numba freezes it into the
#: compiled kernels as a readonly constant.
POPCOUNT_LUT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def ndtr_scalar(x: float) -> float:
    """Standard normal CDF of one value, Cephes-style branch layout."""
    y = x * _SQRT1_2
    z = abs(y)
    if z < _SQRT1_2:
        return 0.5 + 0.5 * math.erf(y)
    tail = 0.5 * math.erfc(z)
    if y > 0.0:
        return 1.0 - tail
    return tail


def parity_fill(challenges: np.ndarray, out: np.ndarray) -> None:
    """Fill *out* with parity features (suffix products of signed bits).

    ``challenges`` is ``(n, k)`` int8 {0, 1}; ``out`` is ``(n, k + 1)``
    float64.  All products are over exact +/-1 values, so the result is
    bit-identical to the vectorized cumprod reference at any order.
    """
    n, k = challenges.shape
    for i in prange(n):
        out[i, k] = 1.0
        prod = 1.0
        for j in range(k - 1, -1, -1):
            prod *= 1.0 - 2.0 * challenges[i, j]
            out[i, j] = prod


def ndtr_fill(x: np.ndarray, out: np.ndarray) -> None:
    """Elementwise standard normal CDF over a flat float64 array."""
    for i in prange(x.shape[0]):
        out[i] = ndtr_scalar(x[i])


def grid_soft_probabilities(
    challenges: np.ndarray,
    weights: np.ndarray,
    quads: np.ndarray,
    has_quad: np.ndarray,
    gains: np.ndarray,
    sigmas: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fused challenge -> parity -> delta -> ndtr pass for a model grid.

    Parameters
    ----------
    challenges:
        ``(n, k)`` int8 challenge chunk.
    weights:
        ``(P, k + 1)`` effective weight rows -- one per (condition, PUF)
        cell of the evaluation grid.
    quads / has_quad:
        ``(P, k + 1, k + 1)`` stage-interaction quadratic forms and the
        per-row flags saying which rows actually carry one (rows with
        ``has_quad[p] == False`` never touch ``quads``).
    gains:
        ``(P,)`` environment delay gains scaling the interaction term
        (the linear term's gain is already folded into *weights*).
    sigmas:
        ``(P,)`` per-row noise sigmas.
    out:
        ``(P, n)`` float64 output: ``ndtr(delta / sigma)`` per cell.

    The parity feature vector of each challenge is computed **once**
    into a per-row scratch and reused by every grid row -- ``phi`` is
    never materialised as an ``(n, k + 1)`` matrix.
    """
    n, k = challenges.shape
    k1 = k + 1
    n_rows = weights.shape[0]
    for i in prange(n):
        phi = np.empty(k1, dtype=np.float64)
        phi[k] = 1.0
        prod = 1.0
        for j in range(k - 1, -1, -1):
            prod *= 1.0 - 2.0 * challenges[i, j]
            phi[j] = prod
        for p in range(n_rows):
            delta = 0.0
            for j in range(k1):
                delta += phi[j] * weights[p, j]
            if has_quad[p]:
                quad = 0.0
                for a in range(k1):
                    row = 0.0
                    for b in range(k1):
                        row += quads[p, a, b] * phi[b]
                    quad += row * phi[a]
                delta += gains[p] * quad
            out[p, i] = ndtr_scalar(delta / sigmas[p])


def grid_noise_free(
    challenges: np.ndarray,
    weights: np.ndarray,
    quads: np.ndarray,
    has_quad: np.ndarray,
    gains: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fused noise-free (sign-of-delta) responses for a model grid.

    Same layout as :func:`grid_soft_probabilities` but writes int8
    response bits ``delta > 0`` into the ``(P, n)`` output.
    """
    n, k = challenges.shape
    k1 = k + 1
    n_rows = weights.shape[0]
    for i in prange(n):
        phi = np.empty(k1, dtype=np.float64)
        phi[k] = 1.0
        prod = 1.0
        for j in range(k - 1, -1, -1):
            prod *= 1.0 - 2.0 * challenges[i, j]
            phi[j] = prod
        for p in range(n_rows):
            delta = 0.0
            for j in range(k1):
                delta += phi[j] * weights[p, j]
            if has_quad[p]:
                quad = 0.0
                for a in range(k1):
                    row = 0.0
                    for b in range(k1):
                        row += quads[p, a, b] * phi[b]
                    quad += row * phi[a]
                delta += gains[p] * quad
            if delta > 0.0:
                out[p, i] = 1
            else:
                out[p, i] = 0


def xor_noise_free(
    challenges: np.ndarray,
    weights: np.ndarray,
    quads: np.ndarray,
    has_quad: np.ndarray,
    gains: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fused k-way XOR PUF noise-free evaluation.

    One pass per challenge: parity features into a scratch vector, one
    delta per constituent, XOR of the sign bits into the ``(n,)`` int8
    output.  Neither ``phi`` nor the per-constituent response matrix is
    ever materialised.
    """
    n, k = challenges.shape
    k1 = k + 1
    n_pufs = weights.shape[0]
    for i in prange(n):
        phi = np.empty(k1, dtype=np.float64)
        phi[k] = 1.0
        prod = 1.0
        for j in range(k - 1, -1, -1):
            prod *= 1.0 - 2.0 * challenges[i, j]
            phi[j] = prod
        bit = 0
        for p in range(n_pufs):
            delta = 0.0
            for j in range(k1):
                delta += phi[j] * weights[p, j]
            if has_quad[p]:
                quad = 0.0
                for a in range(k1):
                    row = 0.0
                    for b in range(k1):
                        row += quads[p, a, b] * phi[b]
                    quad += row * phi[a]
                delta += gains[p] * quad
            if delta > 0.0:
                bit = bit ^ 1
        out[i] = bit


def packed_score_rows(
    packed_a: np.ndarray,
    packed_b: np.ndarray,
    out: np.ndarray,
) -> None:
    """Row-aligned Hamming distances of two ``(M, B)`` packed arrays."""
    n_rows, n_bytes = packed_a.shape
    for i in prange(n_rows):
        total = 0
        for b in range(n_bytes):
            total += POPCOUNT_LUT[packed_a[i, b] ^ packed_b[i, b]]
        out[i] = total


def packed_score_matrix(
    packed_responses: np.ndarray,
    packed_matrix: np.ndarray,
    out: np.ndarray,
) -> None:
    """XOR + popcount scoring of request rows against a whole codebook.

    ``packed_responses`` is ``(R, N, B)`` (R requests, N identities),
    ``packed_matrix`` is the ``(N, B)`` codebook, ``out`` is ``(R, N)``
    int64 Hamming distances.  The parallel loop runs over the flattened
    ``R * N`` cells so single-request calls still fan out across cores.
    """
    n_requests, n_ids, n_bytes = packed_responses.shape
    for cell in prange(n_requests * n_ids):
        r = cell // n_ids
        c = cell % n_ids
        total = 0
        for b in range(n_bytes):
            total += POPCOUNT_LUT[packed_responses[r, c, b] ^ packed_matrix[c, b]]
        out[r, c] = total

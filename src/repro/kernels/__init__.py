"""``repro.kernels`` -- runtime-dispatched implementations of the hot kernels.

The four kernels every large campaign spends its time in -- the parity
feature transform, arbiter/XOR delta evaluation, the ndtr soft-response
kernel and the packed XOR + popcount scorer -- are served by a backend
selected at runtime:

* ``numpy`` (always available): the vectorized reference, bit-identical
  to the seed code path.
* ``numba`` (``pip install repro[fast]``): JIT-compiled *fused* kernels
  -- challenge -> parity -> dot-product -> response in one pass per
  chunk, with the feature matrix never materialised for
  evaluation-only callers, plus a parallel packed scorer.

Select with :func:`set_backend`, the ``REPRO_KERNEL_BACKEND``
environment variable, the engine's ``kernel_backend`` field or the CLI
``--kernel-backend`` flag; auto-detection prefers numba when installed.

Correctness contract (enforced by ``tests/kernels``): integer/bit
kernels are bit-identical across backends; float kernels produce
identical hard responses and probabilities within a documented ULP
bound of the numpy path (see :mod:`repro.kernels._impl`).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backend import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    BackendUnavailableError,
    KernelBackend,
    available_backends,
    current_backend_name,
    get_backend,
    resolve_backend,
    set_backend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "KernelBackend",
    "available_backends",
    "current_backend_name",
    "get_backend",
    "ndtr",
    "resolve_backend",
    "set_backend",
]


def ndtr(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF through the active backend.

    The numpy backend forwards to :func:`scipy.special.ndtr`; the numba
    backend runs the jitted elementwise kernel (relative error <= 1e-13
    of scipy over the full range, <= ~32 ULP for ``|x| <= 6``).
    """
    return get_backend().ndtr(np.asarray(x, dtype=np.float64))

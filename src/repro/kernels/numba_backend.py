"""The numba-compiled backend (optional, ``pip install repro[fast]``).

Importing this module requires numba; the backend registry treats an
:class:`ImportError` here as "backend unavailable" and falls back to
the numpy reference (see :func:`repro.kernels.backend._load_backend`).

All kernels compile the loop implementations from
:mod:`repro.kernels._impl` with ``nopython`` + ``parallel`` and
``fastmath`` **disabled** -- reassociating float math would break the
identical-hard-response contract.  ``cache=True`` persists the compiled
machine code under numba's cache directory (``NUMBA_CACHE_DIR``
overrides the default next to the source tree), so the one-time JIT
warm-up cost -- a few seconds for the full kernel set -- is paid once
per environment, not once per process.  Worker processes still run a
:meth:`~repro.kernels.backend.KernelBackend.warmup` pass on first use
to trigger the (cached) compilation outside the timed hot path.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels import _impl

__all__ = ["make_backend"]

#: Compilation options shared by every kernel.  ``fastmath`` stays off:
#: the float contract (identical hard responses, bounded ULP drift)
#: depends on IEEE-ordered arithmetic.
_JIT = dict(nopython=True, nogil=True, cache=True)

parity_fill = njit(parallel=True, **_JIT)(_impl.parity_fill)
ndtr_fill = njit(parallel=True, **_JIT)(_impl.ndtr_fill)
grid_soft_probabilities = njit(parallel=True, **_JIT)(_impl.grid_soft_probabilities)
grid_noise_free = njit(parallel=True, **_JIT)(_impl.grid_noise_free)
xor_noise_free = njit(parallel=True, **_JIT)(_impl.xor_noise_free)
packed_score_rows = njit(parallel=True, **_JIT)(_impl.packed_score_rows)
packed_score_matrix = njit(parallel=True, **_JIT)(_impl.packed_score_matrix)


def _ndtr(x: np.ndarray) -> np.ndarray:
    """Elementwise standard normal CDF via the jitted scalar kernel."""
    x = np.ascontiguousarray(x, dtype=np.float64)
    out = np.empty(x.size, dtype=np.float64)
    ndtr_fill(x.reshape(-1), out)
    return out.reshape(x.shape)


def _warmup() -> None:
    """Force-compile every kernel on tiny inputs (idempotent, cached)."""
    challenges = np.zeros((2, 3), dtype=np.int8)
    k1 = 4
    phi = np.empty((2, k1), dtype=np.float64)
    parity_fill(challenges, phi)
    weights = np.zeros((2, k1), dtype=np.float64)
    quads = np.zeros((2, k1, k1), dtype=np.float64)
    has_quad = np.zeros(2, dtype=np.bool_)
    gains = np.ones(2, dtype=np.float64)
    sigmas = np.ones(2, dtype=np.float64)
    probs = np.empty((2, 2), dtype=np.float64)
    grid_soft_probabilities(challenges, weights, quads, has_quad, gains, sigmas, probs)
    bits = np.empty((2, 2), dtype=np.int8)
    grid_noise_free(challenges, weights, quads, has_quad, gains, bits)
    xor_bits = np.empty(2, dtype=np.int8)
    xor_noise_free(challenges, weights, quads, has_quad, gains, xor_bits)
    ndtr_fill(np.zeros(2, dtype=np.float64), np.empty(2, dtype=np.float64))
    packed = np.zeros((2, 1), dtype=np.uint8)
    packed_score_rows(packed, packed, np.empty(2, dtype=np.int64))
    packed_score_matrix(
        np.zeros((1, 2, 1), dtype=np.uint8), packed, np.empty((1, 2), dtype=np.int64)
    )


def make_backend():
    """Build the numba :class:`~repro.kernels.backend.KernelBackend`."""
    from repro.kernels.backend import KernelBackend

    return KernelBackend(
        name="numba",
        fused=True,
        parity_fill=parity_fill,
        ndtr=_ndtr,
        grid_soft_probabilities=grid_soft_probabilities,
        grid_noise_free=grid_noise_free,
        xor_noise_free=xor_noise_free,
        packed_score_rows=packed_score_rows,
        packed_score_matrix=packed_score_matrix,
        _warmup=_warmup,
    )

"""The NumPy reference backend.

These are the exact vectorized implementations the library shipped
before the kernel layer existed, wrapped in the
:class:`~repro.kernels.backend.KernelBackend` interface.  They are the
equality oracle of the backend contract: the numpy backend is
bit-identical to the seed code path, and every other backend is
validated against it (bit-identity for integer/bit kernels, identical
hard responses plus a documented ULP bound for float kernels).

The numpy backend does not implement the fused grid kernels
(``fused=False``); callers on this backend keep the materialised-phi
path, which shares one feature matrix per chunk across the whole
evaluation grid (see :mod:`repro.engine.worker`).
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = ["make_backend"]


def _parity_fill(challenges: np.ndarray, out: np.ndarray) -> None:
    """Vectorized parity transform into a preallocated buffer.

    Signed bits are written straight into the feature buffer as float64
    (single conversion), then reduced in place with a reversed cumprod:
    ``phi[:, i] = prod_{j >= i} (1 - 2 c_j)``.
    """
    n, k1 = out.shape
    k = k1 - 1
    np.multiply(challenges, -2.0, out=out[:, :k])
    out[:, :k] += 1.0
    out[:, k] = 1.0
    np.cumprod(out[:, k - 1 :: -1], axis=1, out=out[:, k - 1 :: -1])


def _ndtr(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF (the kernel behind ``stats.norm.cdf``)."""
    return special.ndtr(x)


def make_backend():
    """Build the numpy :class:`~repro.kernels.backend.KernelBackend`."""
    from repro.kernels.backend import KernelBackend

    return KernelBackend(
        name="numpy",
        fused=False,
        parity_fill=_parity_fill,
        ndtr=_ndtr,
        grid_soft_probabilities=None,
        grid_noise_free=None,
        xor_noise_free=None,
        packed_score_rows=None,
        packed_score_matrix=None,
        _warmup=None,
    )

"""Backend registry and runtime dispatch for the hot kernels.

One process runs exactly one *active* kernel backend at a time:

* ``numpy`` -- the vectorized reference implementations, bit-identical
  to the seed code path.  Always available.
* ``numba`` -- JIT-compiled fused kernels (optional dependency,
  ``pip install repro[fast]``).

Selection, in priority order:

1. an explicit :func:`set_backend` call (or the engine/CLI knobs that
   forward to it);
2. the ``REPRO_KERNEL_BACKEND`` environment variable
   (``numpy`` | ``numba`` | ``auto``);
3. auto-detection: ``numba`` when importable, else ``numpy``.

Worker processes never re-run this policy blindly: the evaluation
engine resolves the active backend *name* up front and ships it inside
each chunk call, so a pool worker uses exactly the backend its parent
selected (see :mod:`repro.engine.worker`).  Backends are cached and
warmed once per process -- :meth:`KernelBackend.warmup` is idempotent,
so per-chunk calls never pay compilation.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "KernelBackend",
    "available_backends",
    "current_backend_name",
    "get_backend",
    "resolve_backend",
    "set_backend",
]

#: Environment variable consulted when no backend was set explicitly.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Every selectable backend name (``auto`` additionally accepted by
#: :func:`set_backend` and the environment variable).
BACKEND_NAMES = ("numpy", "numba")


class BackendUnavailableError(RuntimeError):
    """Raised when an explicitly requested backend cannot be loaded."""


@dataclasses.dataclass
class KernelBackend:
    """One backend's kernel set.

    ``fused`` advertises the challenge->parity->delta->response kernels
    that skip the materialised feature matrix; callers fall back to the
    shared-phi path when it is ``False``.  Optional entries are ``None``
    on backends that do not provide them (the dispatchers in
    :mod:`repro.core.codebook` etc. fall back to numpy).
    """

    name: str
    fused: bool
    parity_fill: Callable
    ndtr: Callable
    grid_soft_probabilities: Optional[Callable]
    grid_noise_free: Optional[Callable]
    xor_noise_free: Optional[Callable]
    packed_score_rows: Optional[Callable]
    packed_score_matrix: Optional[Callable]
    _warmup: Optional[Callable[[], None]] = None
    _warmed: bool = dataclasses.field(default=False, repr=False)

    def warmup(self) -> None:
        """Pre-compile every kernel (idempotent; no-op for numpy)."""
        if self._warmed:
            return
        if self._warmup is not None:
            self._warmup()
        self._warmed = True


def _load_numba_backend() -> KernelBackend:
    """Import and build the numba backend (ImportError if numba absent).

    Kept as a module-level function so tests can monkeypatch it to
    simulate a numba-less environment even where numba is installed.
    """
    from repro.kernels import numba_backend

    return numba_backend.make_backend()


def _load_numpy_backend() -> KernelBackend:
    from repro.kernels import numpy_backend

    return numpy_backend.make_backend()


#: Loaded backend singletons, one per name per process.
_LOADED: Dict[str, KernelBackend] = {}

#: Explicit :func:`set_backend` choice (``None`` = env var / auto).
_SELECTED: Optional[str] = None

#: Memoized auto-detection verdict.  A *failed* ``import numba`` is
#: never cached by the interpreter, so without this an auto-policy
#: process re-walks sys.path on every ``get_backend()`` call -- which
#: sits on the per-request serving path.
_AUTO_DETECTED: Optional[str] = None


def _check_name(name: str, *, allow_auto: bool) -> str:
    valid = BACKEND_NAMES + (("auto",) if allow_auto else ())
    if name not in valid:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {valid}"
        )
    return name


def _load(name: str) -> KernelBackend:
    backend = _LOADED.get(name)
    if backend is not None:
        return backend
    if name == "numpy":
        backend = _load_numpy_backend()
    else:
        try:
            backend = _load_numba_backend()
        except ImportError as exc:
            raise BackendUnavailableError(
                "the 'numba' kernel backend requires numba "
                "(pip install 'repro[fast]'); install it or select the "
                "'numpy' backend"
            ) from exc
    _LOADED[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Backend names loadable in this environment."""
    names = ["numpy"]
    try:
        _load("numba")
        names.append("numba")
    except BackendUnavailableError:
        pass
    return tuple(names)


def set_backend(name: Optional[str]) -> None:
    """Select the process-wide kernel backend.

    ``None`` or ``"auto"`` clears any explicit choice and returns to
    the environment-variable / auto-detection policy.  Selecting
    ``"numba"`` where numba is not installed raises
    :class:`BackendUnavailableError` immediately (fail at configuration
    time, not in the middle of a campaign).
    """
    global _SELECTED
    if name is None or name == "auto":
        _SELECTED = None
        return
    _check_name(name, allow_auto=False)
    _load(name)  # fail fast if unavailable
    _SELECTED = name


def _policy_name() -> str:
    """The backend name the current policy resolves to."""
    global _AUTO_DETECTED
    if _SELECTED is not None:
        return _SELECTED
    env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if env and env != "auto":
        return _check_name(env, allow_auto=False)
    if _AUTO_DETECTED is None:
        try:
            _load("numba")
            _AUTO_DETECTED = "numba"
        except BackendUnavailableError:
            _AUTO_DETECTED = "numpy"
    return _AUTO_DETECTED


def get_backend() -> KernelBackend:
    """The active backend under the current selection policy.

    An explicit env-var request for an unavailable backend raises
    :class:`BackendUnavailableError` (a silent fallback would invalidate
    any benchmark run under that setting); auto-detection falls back to
    numpy quietly.
    """
    return _load(_policy_name())


def current_backend_name() -> str:
    """Name of the backend :func:`get_backend` would return."""
    return _policy_name()


def resolve_backend(name: Optional[str] = None) -> KernelBackend:
    """Backend for *name*, warmed and ready for hot-path use.

    ``None`` resolves through the selection policy.  This is the entry
    point worker processes use: the parent ships the resolved name, the
    worker loads it once (module-level cache) and pays JIT warm-up once
    per process, not per chunk.
    """
    backend = get_backend() if name is None else _load(_check_name(name, allow_auto=False))
    backend.warmup()
    return backend

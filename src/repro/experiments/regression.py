"""Regression experiments: extraction methods and soft-vs-hard value.

Programmatic runners behind the Abl-1 and Abl-2 benchmarks.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.attacks.logistic import LogisticAttack
from repro.core.regression import fit_soft_response_model
from repro.crp.challenges import random_challenges
from repro.crp.transform import parity_features
from repro.silicon.arbiter import ArbiterPuf
from repro.silicon.counters import measure_soft_responses
from repro.silicon.noise import PAPER_N_TRIALS

from repro.experiments.stability import N_STAGES

__all__ = ["run_regression_methods", "run_soft_vs_hard"]


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Alignment of two weight vectors, constant feature excluded."""
    a, b = a[:-1], b[:-1]
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))


def run_regression_methods(n_train: int = 5000, seed: int = 0) -> Dict[str, Any]:
    """Abl-1: linear / probit / binomial-MLE / logistic extraction.

    All four estimators get the same enrollment budget; the dict maps
    method name to ``{cosine, accuracy, fit_ms}``.
    """
    puf = ArbiterPuf.create(N_STAGES, seed=seed)
    challenges = random_challenges(n_train, N_STAGES, seed=seed + 1)
    soft = measure_soft_responses(
        puf, challenges, PAPER_N_TRIALS, rng=np.random.default_rng(seed + 2)
    )
    test_ch = random_challenges(50_000, N_STAGES, seed=seed + 3)
    truth = puf.noise_free_response(test_ch)
    test_phi = parity_features(test_ch)

    out: Dict[str, Any] = {}
    for method in ("linear", "probit", "mle"):
        model, report = fit_soft_response_model(soft, method=method)
        boundary = 0.5 if method == "linear" else 0.0
        accuracy = float(((test_phi @ model.weights > boundary) == truth).mean())
        out[method] = {
            "cosine": _cosine(model.weights, puf.weights),
            "accuracy": accuracy,
            "fit_ms": report.fit_seconds * 1000,
        }

    hard = puf.eval(challenges, rng=np.random.default_rng(seed + 4))
    start = time.perf_counter()
    attack = LogisticAttack(seed=seed + 5).fit(parity_features(challenges), hard)
    fit_ms = (time.perf_counter() - start) * 1000
    out["logistic"] = {
        "cosine": _cosine(attack.weights_, puf.weights),
        "accuracy": float((attack.predict(test_phi) == truth).mean()),
        "fit_ms": fit_ms,
    }
    return out


def run_soft_vs_hard(
    budgets: Sequence[int],
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Abl-2: binomial-MLE-on-soft vs logistic-on-hard, equal budgets.

    Returns a list of ``{budget, soft_accuracy, hard_accuracy}`` rows;
    the gap is the value of the paper's on-chip counters.
    """
    puf = ArbiterPuf.create(N_STAGES, seed=seed)
    test_ch = random_challenges(50_000, N_STAGES, seed=seed + 1)
    truth = puf.noise_free_response(test_ch)
    test_phi = parity_features(test_ch)
    series = []
    for budget in budgets:
        challenges = random_challenges(budget, N_STAGES, seed=seed + 2 + budget)
        soft = measure_soft_responses(
            puf, challenges, PAPER_N_TRIALS,
            rng=np.random.default_rng(seed + 3 + budget),
        )
        soft_model, _ = fit_soft_response_model(soft, method="mle")
        soft_acc = float(((test_phi @ soft_model.weights > 0) == truth).mean())

        hard = puf.eval(challenges, rng=np.random.default_rng(seed + 4 + budget))
        hard_model = LogisticAttack(seed=seed + 5).fit(
            parity_features(challenges), hard
        )
        hard_acc = float((hard_model.predict(test_phi) == truth).mean())
        series.append(
            {"budget": budget, "soft_accuracy": soft_acc, "hard_accuracy": hard_acc}
        )
    return series

"""Threshold experiments: Figs. 8-12 and the threshold-policy ablation.

Programmatic runners behind the corresponding benchmarks.  Each
function reproduces one evaluation element of the paper's Secs. 4-5 and
returns a JSON-serialisable dict (see per-function docs for keys).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.adjustment import BetaFactors, conservative_betas, find_beta_factors
from repro.core.model import XorPufModel
from repro.core.regression import fit_soft_response_model
from repro.core.selection import ChallengeSelector
from repro.core.thresholds import (
    ResponseCategory,
    ThresholdPair,
    category_to_bit,
    classify_predictions,
    determine_thresholds,
)
from repro.crp.challenges import random_challenges
from repro.silicon.chip import PAPER_LOT_SIZE, PufChip, fabricate_lot
from repro.silicon.counters import measure_soft_responses
from repro.silicon.environment import NOMINAL_CONDITION, paper_corner_grid
from repro.silicon.noise import PAPER_N_TRIALS

from repro.experiments.stability import N_STAGES, make_engine

__all__ = [
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_threshold_policy",
    "PAPER_TRAIN_SIZE",
]

#: Enrollment training-set size the paper settles on.
PAPER_TRAIN_SIZE = 5000


def run_fig08(n_train: int = PAPER_TRAIN_SIZE, seed: int = 0) -> Dict[str, Any]:
    """Fig. 8: measured-vs-predicted soft responses and the threshold pair.

    Returns a dict with the prediction range (``pred_min``/``pred_max``,
    paper: wider than [0, 1]), ``thr0``/``thr1``, the measured and
    model-kept stable fractions, the discarded marginal fraction and
    ``false_stable_count`` (must be 0).
    """
    chip = PufChip.create(1, N_STAGES, seed=seed)
    puf = chip.oracle().pufs[0]
    challenges = random_challenges(n_train, N_STAGES, seed=seed + 1)
    train = measure_soft_responses(
        puf, challenges, PAPER_N_TRIALS, rng=np.random.default_rng(seed + 2)
    )
    model, report = fit_soft_response_model(train)
    predicted = model.predict_soft(challenges)
    pair = determine_thresholds(predicted, train)
    categories = classify_predictions(predicted, pair)
    measured_stable = train.stable_mask
    predicted_stable = categories != ResponseCategory.UNSTABLE
    return {
        "n_train": n_train,
        "fit_ms": report.fit_seconds * 1000,
        "pred_min": float(predicted.min()),
        "pred_max": float(predicted.max()),
        "pred_median": float(np.median(predicted)),
        "thr0": pair.thr0,
        "thr1": pair.thr1,
        "measured_stable_fraction": float(measured_stable.mean()),
        "predicted_stable_fraction": float(predicted_stable.mean()),
        "discarded_marginal_fraction": float(
            (measured_stable & ~predicted_stable).mean()
        ),
        "false_stable_count": int((predicted_stable & ~measured_stable).sum()),
    }


def run_fig09(
    n_test: int,
    n_chips: int = PAPER_LOT_SIZE,
    seed: int = 0,
) -> Dict[str, Any]:
    """Fig. 9: per-chip beta search at nominal + fleet-conservative pair.

    Paper bands: beta0 in [0.74, 0.93], beta1 in [1.04, 1.08]; fleet
    pair (0.74, 1.08).  Returns ``beta0_values``, ``beta1_values``,
    ``fleet_beta0``, ``fleet_beta1``.
    """
    lot = fabricate_lot(n_chips, 1, N_STAGES, seed=seed)
    betas = []
    for index, chip in enumerate(lot):
        puf = chip.oracle().pufs[0]
        train_ch = random_challenges(PAPER_TRAIN_SIZE, N_STAGES, seed=seed + index + 1)
        train = measure_soft_responses(
            puf, train_ch, PAPER_N_TRIALS,
            rng=np.random.default_rng(seed + index + 50),
        )
        model, _ = fit_soft_response_model(train)
        pair = determine_thresholds(model.predict_soft(train_ch), train)
        test_ch = random_challenges(n_test, N_STAGES, seed=seed + index + 100)
        test = measure_soft_responses(
            puf, test_ch, PAPER_N_TRIALS,
            rng=np.random.default_rng(seed + index + 150),
        )
        betas.append(find_beta_factors(model, pair, [test]))
    fleet = conservative_betas(betas)
    return {
        "n_chips": n_chips,
        "n_test": n_test,
        "beta0_values": [b.beta0 for b in betas],
        "beta1_values": [b.beta1 for b in betas],
        "fleet_beta0": fleet.beta0,
        "fleet_beta1": fleet.beta1,
    }


def run_fig10(
    n_test: int,
    n_validation: int = 30_000,
    train_sizes: Sequence[int] = (500, 1000, 2000, 5000, 10_000),
    seed: int = 0,
) -> Dict[str, Any]:
    """Fig. 10: predicted-stable fraction vs training-set size.

    Paper: grows with the training set and saturates ~60 % (vs ~80 %
    measured); 5 000 CRPs is the cost/accuracy knee.  Returns
    ``measured_stable`` and a ``series`` of per-size dicts
    (``train_size``, ``predicted_stable``, ``fit_ms``).
    """
    chip = PufChip.create(1, N_STAGES, seed=seed)
    puf = chip.oracle().pufs[0]
    test_ch = random_challenges(n_test, N_STAGES, seed=seed + 1)
    test = measure_soft_responses(
        puf, test_ch, PAPER_N_TRIALS, rng=np.random.default_rng(seed + 2)
    )
    validation_ch = random_challenges(n_validation, N_STAGES, seed=seed + 3)
    validation = measure_soft_responses(
        puf, validation_ch, PAPER_N_TRIALS, rng=np.random.default_rng(seed + 4)
    )
    series = []
    for size in train_sizes:
        train_ch = random_challenges(size, N_STAGES, seed=seed + 5 + size)
        train = measure_soft_responses(
            puf, train_ch, PAPER_N_TRIALS,
            rng=np.random.default_rng(seed + 6 + size),
        )
        model, report = fit_soft_response_model(train)
        pair = determine_thresholds(model.predict_soft(train_ch), train)
        betas = find_beta_factors(model, pair, [validation])
        adjusted = betas.apply(pair)
        categories = classify_predictions(model.predict_soft(test_ch), adjusted)
        series.append(
            {
                "train_size": size,
                "predicted_stable": float(
                    (categories != ResponseCategory.UNSTABLE).mean()
                ),
                "fit_ms": report.fit_seconds * 1000,
            }
        )
    return {
        "measured_stable": float(test.stable_mask.mean()),
        "series": series,
    }


def run_fig11(n_test: int, seed: int = 0) -> Dict[str, Any]:
    """Fig. 11: beta adjustment across the 9 V/T corners.

    Paper: corner validation lands on more stringent betas than nominal
    and the test-set distribution widens.  Returns the training
    thresholds, both beta pairs and the nominal vs all-corner stable
    fractions.
    """
    chip = PufChip.create(1, N_STAGES, seed=seed)
    puf = chip.oracle().pufs[0]
    train_ch = random_challenges(PAPER_TRAIN_SIZE, N_STAGES, seed=seed + 1)
    train = measure_soft_responses(
        puf, train_ch, PAPER_N_TRIALS, rng=np.random.default_rng(seed + 2)
    )
    model, _ = fit_soft_response_model(train)
    pair = determine_thresholds(model.predict_soft(train_ch), train)

    test_ch = random_challenges(n_test, N_STAGES, seed=seed + 3)
    nominal_sets = [
        measure_soft_responses(
            puf, test_ch, PAPER_N_TRIALS, rng=np.random.default_rng(seed + 4)
        )
    ]
    corner_sets = [
        measure_soft_responses(
            puf, test_ch, PAPER_N_TRIALS, condition,
            rng=np.random.default_rng(seed + 10 + i),
        )
        for i, condition in enumerate(paper_corner_grid())
    ]
    betas_nominal = find_beta_factors(model, pair, nominal_sets)
    betas_vt = find_beta_factors(model, pair, corner_sets)
    stable_nominal = nominal_sets[0].stable_mask
    stable_everywhere = np.ones(n_test, dtype=bool)
    for dataset in corner_sets:
        stable_everywhere &= dataset.stable_mask
    return {
        "n_test": n_test,
        "thr0": pair.thr0,
        "thr1": pair.thr1,
        "betas_nominal": (betas_nominal.beta0, betas_nominal.beta1),
        "betas_vt": (betas_vt.beta0, betas_vt.beta1),
        "stable_nominal": float(stable_nominal.mean()),
        "stable_all_corners": float(stable_everywhere.mean()),
    }


def _enroll_fig12_models(
    chip: PufChip,
    n_validation: int,
    seed: int,
    engine,
) -> Tuple[list, list, BetaFactors, BetaFactors]:
    """Per-PUF models, thresholds, and nominal/V-T fleet betas.

    The validation measurements -- one shared challenge matrix across
    all constituents and all 1 + 9 conditions -- run as a single engine
    campaign, so the challenge features are computed once for the whole
    ``(condition, PUF)`` grid.
    """
    models, pairs = [], []
    validation_ch = random_challenges(n_validation, N_STAGES, seed=seed + 500)
    grid_conditions = [NOMINAL_CONDITION] + list(paper_corner_grid())
    val_grid = engine.measure_grid(
        chip.oracle().pufs,
        validation_ch,
        PAPER_N_TRIALS,
        grid_conditions,
        seed=seed + 200,
    )
    nominal_beta_list, vt_beta_list = [], []
    for index in range(chip.n_pufs):
        puf = chip.oracle().pufs[index]
        train_ch = random_challenges(PAPER_TRAIN_SIZE, N_STAGES, seed=seed + index)
        train = measure_soft_responses(
            puf, train_ch, PAPER_N_TRIALS,
            rng=np.random.default_rng(seed + 100 + index),
        )
        model, _ = fit_soft_response_model(train)
        pair = determine_thresholds(model.predict_soft(train_ch), train)
        nominal_val = [val_grid[0][index]]
        corner_val = [row[index] for row in val_grid[1:]]
        nominal_beta_list.append(find_beta_factors(model, pair, nominal_val))
        vt_beta_list.append(find_beta_factors(model, pair, corner_val))
        models.append(model)
        pairs.append(pair)
    return (
        models,
        pairs,
        conservative_betas(nominal_beta_list),
        conservative_betas(vt_beta_list),
    )


def run_fig12(
    n_eval: int,
    n_validation: int = 20_000,
    n_pufs: int = 10,
    seed: int = 0,
    *,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Fig. 12: stable fraction vs n under three selection regimes.

    Paper: measured ~0.800**n, predicted-nominal ~0.545**n,
    predicted-V/T ~0.342**n.  Returns per-regime ``{n: fraction}``
    dicts plus the beta pairs.
    """
    chip = PufChip.create(n_pufs, N_STAGES, seed=seed)
    engine = make_engine(jobs, chunk_size, checkpoint_dir)
    models, pairs, betas_nom, betas_vt = _enroll_fig12_models(
        chip, n_validation, seed, engine
    )
    xor_model = XorPufModel(models)
    eval_ch = random_challenges(n_eval, N_STAGES, seed=seed + 999)
    measured_masks = np.stack(
        [
            dataset.stable_mask
            for dataset in engine.measure_xor_constituents(
                chip.oracle(), eval_ch, PAPER_N_TRIALS, seed=seed + 600
            )
        ]
    )

    def predicted_masks(betas: BetaFactors) -> np.ndarray:
        selector = ChallengeSelector(
            xor_model, [betas.apply(pair) for pair in pairs]
        )
        return selector.categories(eval_ch) != ResponseCategory.UNSTABLE

    pred_nom = predicted_masks(betas_nom)
    pred_vt = predicted_masks(betas_vt)

    def fractions(masks: np.ndarray) -> Dict[int, float]:
        return {n: float(masks[:n].all(axis=0).mean()) for n in range(1, n_pufs + 1)}

    return {
        "n_eval": n_eval,
        "betas_nominal": (betas_nom.beta0, betas_nom.beta1),
        "betas_vt": (betas_vt.beta0, betas_vt.beta1),
        "measured": fractions(measured_masks),
        "predicted_nominal": fractions(pred_nom),
        "predicted_vt": fractions(pred_vt),
    }


def run_threshold_policy(n_eval: int, seed: int = 0) -> Dict[str, Any]:
    """Abl-4: flip errors of the 0.5 cut vs three-category policies.

    Returns per-policy dicts with ``usable_fraction`` and
    ``error_rate`` (one-shot disagreements with the server prediction).
    """
    puf = PufChip.create(1, N_STAGES, seed=seed).oracle().pufs[0]
    train_ch = random_challenges(PAPER_TRAIN_SIZE, N_STAGES, seed=seed + 1)
    train = measure_soft_responses(
        puf, train_ch, PAPER_N_TRIALS, rng=np.random.default_rng(seed + 2)
    )
    model, _ = fit_soft_response_model(train)
    pair = determine_thresholds(model.predict_soft(train_ch), train)
    validation_ch = random_challenges(20_000, N_STAGES, seed=seed + 3)
    validation = measure_soft_responses(
        puf, validation_ch, PAPER_N_TRIALS, rng=np.random.default_rng(seed + 4)
    )
    betas = find_beta_factors(model, pair, [validation])
    adjusted = betas.apply(pair)

    eval_ch = random_challenges(n_eval, N_STAGES, seed=seed + 5)
    predicted = model.predict_soft(eval_ch)
    one_shot = puf.eval(eval_ch, rng=np.random.default_rng(seed + 6))

    policies: Dict[str, Dict[str, float]] = {}
    bits = (predicted > 0.5).astype(np.int8)
    policies["two_category"] = {
        "usable_fraction": 1.0,
        "error_rate": float((bits != one_shot).mean()),
    }
    for name, thresholds in (
        ("three_category", pair),
        ("three_category_beta", adjusted),
    ):
        categories = classify_predictions(predicted, thresholds)
        usable = categories != ResponseCategory.UNSTABLE
        bits = category_to_bit(categories)
        errors = (bits[usable] != one_shot[usable]).mean() if usable.any() else 0.0
        policies[name] = {
            "usable_fraction": float(usable.mean()),
            "error_rate": float(errors),
        }
    return policies

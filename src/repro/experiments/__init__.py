"""Programmatic runners for every reproduced figure and ablation.

This package is the Python API behind the ``benchmarks/`` directory:
each function runs one of the paper's evaluation elements (or one of
the reproduction's ablations) at a caller-chosen scale and returns a
JSON-serialisable dict.  The benchmarks are thin wrappers that pick
default sizes, print paper-vs-measured tables and archive the results.

Quick map (see DESIGN.md Sec. 4 for the full experiment index):

========================  ==============================================
function                  reproduces
========================  ==============================================
``run_fig02``             soft-response histogram (39.7 % / 40.1 %)
``run_fig03``             0.800**n stable-fraction decay
``run_fig04``             MLP attack learning curves vs n
``run_fig08``             three-category thresholds
``run_fig09``             per-chip / fleet beta search at nominal
``run_fig10``             predicted-stable vs training-set size
``run_fig11``             beta adjustment across V/T corners
``run_fig12``             measured / nominal / V-T stable decay vs n
``run_training_speed``    0.395 ms/CRP claim
``run_zero_hd_authentication``  protocol error rates
``run_regression_methods``      Abl-1 extraction comparison
``run_soft_vs_hard``            Abl-2 counters' value
``run_baseline_comparison``     Abl-3 scheme comparison
``run_threshold_policy``        Abl-4 flip-error comparison
``run_aging_study``             Abl-5 aging lifetimes
``run_salvage_comparison``      Abl-6 XOR-level salvage
``run_bifurcation_attack``      Abl-7 ref-[6] attack slowdown
``run_security_margin``         Sec-1 "n >= 10" crossover
``run_reliability_defense``     Sec-2 ref-[9] attack vs protocol
``run_feedforward_comparison``  Abl-8 width vs structure hardening
========================  ==============================================
"""

from repro.experiments.feedforward import DEFAULT_LOOPS, run_feedforward_comparison
from repro.experiments.attacks import (
    run_bifurcation_attack,
    run_fig04,
    run_reliability_defense,
    run_security_margin,
    run_training_speed,
)
from repro.experiments.protocols import (
    AGING_HOURS,
    run_aging_study,
    run_baseline_comparison,
    run_salvage_comparison,
    run_zero_hd_authentication,
)
from repro.experiments.regression import run_regression_methods, run_soft_vs_hard
from repro.experiments.stability import N_STAGES, run_fig02, run_fig03
from repro.experiments.thresholds import (
    PAPER_TRAIN_SIZE,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_threshold_policy,
)

__all__ = [
    "DEFAULT_LOOPS",
    "run_feedforward_comparison",
    "run_bifurcation_attack",
    "run_fig04",
    "run_reliability_defense",
    "run_security_margin",
    "run_training_speed",
    "AGING_HOURS",
    "run_aging_study",
    "run_baseline_comparison",
    "run_salvage_comparison",
    "run_zero_hd_authentication",
    "run_regression_methods",
    "run_soft_vs_hard",
    "N_STAGES",
    "run_fig02",
    "run_fig03",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_threshold_policy",
    "PAPER_TRAIN_SIZE",
]

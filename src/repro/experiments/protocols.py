"""Protocol experiments: authentication, scheme comparison, aging, salvage.

Programmatic runners behind the protocol-level benchmarks (zero-HD
operation, the baselines ablation, the aging lifetime study and the
Sec.-2.2 salvage trade-off).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

import numpy as np

from repro.baselines.majority_vote import (
    authenticate_majority_vote,
    enroll_majority_vote,
)
from repro.baselines.measurement_selection import (
    authenticate_from_table,
    enroll_measured_table,
)
from repro.baselines.noise_bifurcation import run_noise_bifurcation_session
from repro.core.authentication import authenticate
from repro.core.enrollment import enroll_chip
from repro.core.salvage import authenticate_salvage, enroll_salvage
from repro.core.server import AuthenticationServer
from repro.crp.challenges import random_challenges
from repro.silicon.aging import AgingModel, age_chip
from repro.silicon.chip import PufChip, fabricate_lot
from repro.silicon.environment import paper_corner_grid
from repro.silicon.noise import PAPER_N_TRIALS

from repro.experiments.stability import N_STAGES

__all__ = [
    "run_zero_hd_authentication",
    "run_baseline_comparison",
    "run_aging_study",
    "run_salvage_comparison",
]

#: Aging milestones used by the lifetime study (hours).
AGING_HOURS = (0.0, 1000.0, 8760.0, 43_800.0, 87_600.0)


def run_zero_hd_authentication(
    n_sessions: int,
    n_challenges: int = 64,
    n_pufs: int = 4,
    seed: int = 0,
) -> Dict[str, Any]:
    """T-text-3: error rates of the zero-HD protocol across corners.

    Enrolls a 3-chip lot with corner validation, then runs honest
    sessions rotating through the 9 corners, impostor sessions, and a
    random-challenge control.  Returns the three rates.
    """
    lot = fabricate_lot(3, n_pufs, N_STAGES, seed=seed)
    server = AuthenticationServer()
    for i, chip in enumerate(lot):
        server.enroll(
            chip, seed=seed + 10 + i,
            n_enroll_challenges=5000, n_validation_challenges=20_000,
            validation_conditions=paper_corner_grid(),
        )
    false_rejects = 0
    for session in range(n_sessions):
        chip = lot[session % len(lot)]
        condition = paper_corner_grid()[session % 9]
        result = server.authenticate(
            chip, n_challenges=n_challenges, condition=condition,
            seed=seed + 1000 + session,
        )
        false_rejects += not result.approved

    false_accepts = 0
    impostors = fabricate_lot(2, n_pufs, N_STAGES, seed=seed + 777)
    for session in range(n_sessions):
        impostor = impostors[session % len(impostors)]
        claimed = lot[session % len(lot)].chip_id
        result = server.authenticate(
            impostor, claimed_id=claimed, n_challenges=n_challenges,
            seed=seed + 2000 + session,
        )
        false_accepts += result.approved

    chip = lot[0]
    record = server.record(chip.chip_id)
    control_rejects = 0
    for session in range(n_sessions):
        challenges = random_challenges(
            n_challenges, N_STAGES, seed=seed + 3000 + session
        )
        predicted = record.xor_model.predict_xor_response(challenges)
        responses = chip.xor_response(challenges)
        control_rejects += bool((responses != predicted).any())
    return {
        "n_sessions": n_sessions,
        "n_challenges": n_challenges,
        "false_reject_rate": false_rejects / n_sessions,
        "false_accept_rate": false_accepts / n_sessions,
        "random_challenge_reject_rate": control_rejects / n_sessions,
    }


def run_baseline_comparison(
    n_candidates: int,
    n_pufs: int = 6,
    seed: int = 0,
) -> Dict[str, Any]:
    """Abl-3: the proposed scheme vs the prior-work baselines.

    Returns per-scheme dicts with enrollment cost, usable-CRP supply,
    server storage, honest/impostor outcomes and criteria.
    """
    results: Dict[str, Any] = {}
    chip = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="abl")
    record = enroll_chip(
        chip, n_enroll_challenges=5000, n_validation_challenges=20_000,
        seed=seed + 1,
    )
    selector = record.selector()
    honest = authenticate(chip, selector, 64, seed=seed + 2)
    impostor_chip = PufChip.create(n_pufs, N_STAGES, seed=seed + 99)
    impostor = authenticate(impostor_chip, selector, 64, seed=seed + 3)
    results["proposed"] = {
        "enroll_measurements": n_pufs * (5000 + 20_000) * PAPER_N_TRIALS,
        "usable_crps": "unbounded (model)",
        "storage_floats": n_pufs * (N_STAGES + 1 + 2),
        "honest_ok": honest.approved,
        "impostor_ok": impostor.approved,
        "impostor_hd": impostor.hamming_distance,
        "criterion": "zero HD",
    }

    chip_t = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="abl")
    table = enroll_measured_table(chip_t, n_candidates, seed=seed + 4)
    honest_t = authenticate_from_table(chip_t, table, 64, seed=seed + 5)
    impostor_t = authenticate_from_table(impostor_chip, table, 64, seed=seed + 6)
    results["measurement_table"] = {
        "enroll_measurements": n_pufs * n_candidates * PAPER_N_TRIALS,
        "usable_crps": len(table.crps),
        "storage_floats": len(table.crps) * (N_STAGES / 64 + 1),
        "honest_ok": honest_t.approved,
        "impostor_ok": impostor_t.approved,
        "impostor_hd": impostor_t.hamming_distance,
        "criterion": "zero HD (table-limited)",
    }

    chip_m = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="abl")
    mv = enroll_majority_vote(chip_m, 5000, n_votes=15, seed=seed + 7)
    honest_m = authenticate_majority_vote(chip_m, mv, 256, seed=seed + 8)
    impostor_m = authenticate_majority_vote(impostor_chip, mv, 256, seed=seed + 9)
    results["majority_vote"] = {
        "enroll_measurements": 5000 * 15,
        "usable_crps": 5000,
        "storage_floats": 5000 * (N_STAGES / 64 + 1),
        "honest_ok": honest_m.approved,
        "impostor_ok": impostor_m.approved,
        "impostor_hd": impostor_m.hamming_distance,
        "criterion": "HD <= 10 %",
    }

    chip_n = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="abl")
    honest_n = run_noise_bifurcation_session(
        chip_n, record.xor_model, 256, seed=seed + 10
    )
    impostor_n = run_noise_bifurcation_session(
        impostor_chip, record.xor_model, 256, seed=seed + 11
    )
    results["noise_bifurcation"] = {
        "enroll_measurements": n_pufs * (5000 + 20_000) * PAPER_N_TRIALS,
        "usable_crps": "unbounded (model)",
        "storage_floats": n_pufs * (N_STAGES + 1),
        "honest_ok": honest_n.approved,
        "impostor_ok": impostor_n.approved,
        "impostor_hd": 1.0 - impostor_n.match_fraction,
        "criterion": "match >= 90 % (vs 75 % guess baseline)",
    }
    return results


def run_aging_study(
    n_selected: int,
    aging_amplitude: float = 0.30,
    n_pufs: int = 4,
    seed: int = 0,
) -> Dict[str, Any]:
    """Abl-5: selected-CRP flip rates over an accelerated aging life.

    Returns the milestone ``hours``, both enrollment beta pairs and a
    per-policy series of flip rates.
    """
    chip_nominal = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="age")
    chip_corner = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="age")
    record_nominal = enroll_chip(
        chip_nominal, n_enroll_challenges=5000,
        n_validation_challenges=20_000, seed=seed + 1,
    )
    record_corner = enroll_chip(
        chip_corner, n_enroll_challenges=5000, n_validation_challenges=20_000,
        validation_conditions=paper_corner_grid(), seed=seed + 1,
    )
    selections = {
        "nominal_beta": record_nominal.selector().select(n_selected, seed=seed + 2),
        "corner_beta": record_corner.selector().select(n_selected, seed=seed + 2),
    }
    model = AgingModel(amplitude=aging_amplitude)
    series: Dict[str, list] = {name: [] for name in selections}
    for hours in AGING_HOURS:
        aged = age_chip(chip_nominal, hours, model, seed=seed + 3)
        for name, (challenges, predicted) in selections.items():
            responses = aged.xor_response(challenges)
            series[name].append(float((responses != predicted).mean()))
    return {
        "hours": list(AGING_HOURS),
        "betas_nominal": (record_nominal.betas.beta0, record_nominal.betas.beta1),
        "betas_corner": (record_corner.betas.beta0, record_corner.betas.beta1),
        "flip_rates": series,
    }


def run_salvage_comparison(
    n_candidates: int,
    n_pufs: int = 8,
    seed: int = 0,
) -> Dict[str, Any]:
    """Abl-6: model selection vs XOR-level soft-response salvage.

    Returns per-policy dicts (yield, enrollment reads, outcomes,
    criterion) plus the all-stable 0.8**n reference yield.
    """
    chip_a = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="salv")
    record_model = enroll_chip(
        chip_a, n_enroll_challenges=5000, n_validation_challenges=20_000,
        seed=seed + 1,
    )
    selector = record_model.selector()
    probe = random_challenges(50_000, N_STAGES, seed=seed + 2)
    model_yield = selector.predicted_stable_fraction(probe)
    honest_model = authenticate(chip_a, selector, 64, seed=seed + 3)
    impostor_chip = PufChip.create(n_pufs, N_STAGES, seed=seed + 99)
    impostor_model = authenticate(impostor_chip, selector, 64, seed=seed + 4)

    chip_b = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="salv")
    record_salvage = enroll_salvage(
        chip_b, n_candidates, soft_threshold=0.02, n_trials=1500,
        seed=seed + 5,
    )
    honest_salvage = authenticate_salvage(
        chip_b, record_salvage, 256, seed=seed + 6
    )
    impostor_salvage = authenticate_salvage(
        impostor_chip, record_salvage, 256, seed=seed + 7
    )
    return {
        "model": {
            "yield": model_yield,
            "enroll_reads": n_pufs * (5000 + 20_000) * PAPER_N_TRIALS,
            "honest_ok": honest_model.approved,
            "impostor_ok": impostor_model.approved,
            "criterion": "zero HD, one-shot",
        },
        "salvage": {
            "yield": record_salvage.yield_fraction,
            "enroll_reads": n_candidates * 1500,
            "honest_ok": honest_salvage.approved,
            "impostor_ok": impostor_salvage.approved,
            "criterion": (
                f"HD <= {honest_salvage.tolerance}/256, 5-vote majority"
            ),
        },
        "all_stable_reference_yield": 0.8**n_pufs,
    }

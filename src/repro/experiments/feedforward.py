"""Feed-forward ablation: structural vs width-based hardening.

The paper hardens its PUF by XOR *width* (more parallel linear PUFs);
its ref [1] studies feed-forward *structure* (nonlinear constituents).
This experiment compares the two axes at equal n on three measures:

* **stability**: fraction of challenges whose XOR output never flips
  over a Monte-Carlo repetition budget (feed-forward adds intermediate
  arbiters, each a fresh noise source);
* **linear-attack resistance**: accuracy of a logistic model on parity
  features (feed-forward breaks the linear model per constituent);
* **MLP-attack resistance**: the paper's actual attack, which can
  express some nonlinearity.

Expected shape (and the reason the paper chose width): feed-forward
buys per-constituent nonlinearity but pays stability at the same coin
-- while XOR width buys security *faster* than it costs stability once
the attack's CRP requirement growth (x2+ per PUF) is accounted for.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.attacks.logistic import LogisticAttack
from repro.attacks.mlp import MlpClassifier
from repro.crp.challenges import random_challenges
from repro.crp.transform import parity_features
from repro.silicon.feedforward import FeedForwardXorPuf
from repro.silicon.xorpuf import XorArbiterPuf

from repro.experiments.stability import N_STAGES

__all__ = ["run_feedforward_comparison", "DEFAULT_LOOPS"]

#: Loop topology used by the feed-forward constituents: five taps spread
#: over the chain, each driving a stage eight positions downstream.
DEFAULT_LOOPS: Tuple[Tuple[int, int], ...] = (
    (2, 10),
    (7, 15),
    (12, 20),
    (17, 25),
    (22, 30),
)


def _stability(puf, n_challenges: int, n_trials: int, seed: int) -> float:
    """Fraction of challenges whose XOR output never flips in n_trials."""
    challenges = random_challenges(n_challenges, N_STAGES, seed=seed)
    rng = np.random.default_rng(seed + 1)
    counts = np.zeros(n_challenges, dtype=np.int64)
    for _ in range(n_trials):
        counts += puf.eval(challenges, rng=rng)
    return float(((counts == 0) | (counts == n_trials)).mean())


def _attack_accuracies(
    puf, n_train: int, seed: int
) -> Tuple[float, float]:
    """(logistic, MLP) accuracies on noise-free responses."""
    train_ch = random_challenges(n_train, N_STAGES, seed=seed)
    train_y = puf.noise_free_response(train_ch)
    test_ch = random_challenges(8000, N_STAGES, seed=seed + 1)
    test_y = puf.noise_free_response(test_ch)
    train_x, test_x = parity_features(train_ch), parity_features(test_ch)
    logistic = LogisticAttack(seed=seed + 2).fit(train_x, train_y)
    mlp = MlpClassifier(seed=seed + 3, max_iter=250).fit(train_x, train_y)
    return (
        float(logistic.score(test_x, test_y)),
        float(mlp.score(test_x, test_y)),
    )


def run_feedforward_comparison(
    n_values: Sequence[int] = (1, 2),
    n_train: int = 15_000,
    n_stability_challenges: int = 2000,
    n_stability_trials: int = 101,
    loops: Sequence[Tuple[int, int]] = DEFAULT_LOOPS,
    seed: int = 0,
) -> Dict[str, Any]:
    """Compare linear-XOR and feed-forward-XOR PUFs at equal widths.

    Returns per-width rows for both structures with ``stability``,
    ``logistic_accuracy`` and ``mlp_accuracy``.
    """
    results: Dict[str, Any] = {"linear": {}, "feedforward": {}}
    for n in n_values:
        linear = XorArbiterPuf.create(n, N_STAGES, seed=seed + n)
        ff = FeedForwardXorPuf.create(n, N_STAGES, loops, seed=seed + 50 + n)
        for name, puf in (("linear", linear), ("feedforward", ff)):
            log_acc, mlp_acc = _attack_accuracies(puf, n_train, seed + 100 + n)
            results[name][str(n)] = {
                "stability": _stability(
                    puf, n_stability_challenges, n_stability_trials,
                    seed + 200 + n,
                ),
                "logistic_accuracy": log_acc,
                "mlp_accuracy": mlp_acc,
            }
    return results

"""Attack experiments: Fig. 4, training speed, security margins.

Programmatic runners behind the attack-side benchmarks (Fig. 4, the
ms-per-CRP claim, the "n >= 10" crossover arithmetic, the reliability
attack defence and the noise-bifurcation slowdown).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.analysis.attack_cost import (
    crps_to_reach,
    fit_requirement_growth,
    security_crossover_width,
)
from repro.attacks.features import attack_matrices, attack_matrix
from repro.attacks.harness import collect_stable_xor_crps, learning_curve
from repro.attacks.mlp import MlpClassifier
from repro.attacks.reliability import ReliabilityAttack, estimate_reliability
from repro.baselines.noise_bifurcation import (
    attacker_view,
    run_noise_bifurcation_session,
)
from repro.core.enrollment import enroll_chip
from repro.crp.challenges import random_challenges
from repro.crp.transform import parity_features
from repro.silicon.chip import PufChip
from repro.silicon.noise import PAPER_N_TRIALS
from repro.silicon.xorpuf import XorArbiterPuf

from repro.experiments.stability import N_STAGES

__all__ = [
    "run_fig04",
    "run_training_speed",
    "run_security_margin",
    "run_reliability_defense",
    "run_bifurcation_attack",
]


def run_fig04(
    n_values: Sequence[int],
    n_challenge_pool: int,
    seed: int = 0,
) -> Dict[str, Any]:
    """Fig. 4: MLP attack learning curves per XOR width.

    For each width, harvests stable CRPs with the paper's 90/10 recipe
    and sweeps nested training sizes.  Returns ``pool`` and ``curves``
    (str(n) -> list of {n_train, accuracy, ms_per_crp}).
    """
    xor_puf = XorArbiterPuf.create(max(n_values), N_STAGES, seed=seed)
    curves: Dict[str, list] = {}
    for n in n_values:
        train, test = collect_stable_xor_crps(
            xor_puf.subset(n), n_challenge_pool, PAPER_N_TRIALS, seed=seed + n
        )
        sizes = [
            s for s in (1000, 4000, 10_000, 25_000, 100_000, 400_000)
            if s <= len(train)
        ] or [len(train)]
        results = learning_curve(
            lambda: MlpClassifier(seed=seed + 100 + n, max_iter=300),
            train,
            test,
            sizes,
            seed=seed + 200 + n,
        )
        curves[str(n)] = [
            {
                "n_train": r.n_train,
                "accuracy": r.accuracy,
                "ms_per_crp": r.ms_per_crp,
            }
            for r in results
        ]
    return {"pool": n_challenge_pool, "curves": curves}


def run_training_speed(
    n_train: int,
    n_values: Sequence[int],
    seed: int = 0,
) -> Dict[str, Any]:
    """T-text-1: ms-per-CRP of the MLP attack and its n-dependence.

    Paper: 0.395 ms/CRP, "only a weak function of n".  Returns per-n
    dicts with ``n_train``, ``ms_per_crp``, ``accuracy``,
    ``iterations``.
    """
    per_n = {}
    for n in n_values:
        xor_puf = XorArbiterPuf.create(n, N_STAGES, seed=seed + n)
        pool = int(n_train / (0.9 * 0.8**n)) + 4000
        train, test = collect_stable_xor_crps(
            xor_puf, pool, PAPER_N_TRIALS, seed=seed + 50 + n
        )
        size = min(n_train, len(train))
        train_x, train_y, test_x, test_y = attack_matrices(
            train.subset(np.arange(size)), test
        )
        attack = MlpClassifier(seed=seed + 100 + n, max_iter=300)
        attack.fit(train_x, train_y)
        per_n[str(n)] = {
            "n_train": size,
            "ms_per_crp": 1000.0 * attack.fit_seconds_ / size,
            "accuracy": attack.score(test_x, test_y),
            "iterations": attack.n_iter_,
        }
    return per_n


def run_security_margin(
    n_values: Sequence[int],
    pool: int,
    target_accuracy: float = 0.90,
    seed: int = 0,
) -> Dict[str, Any]:
    """Sec-1: fit the attack's CRP-requirement growth, find the crossover.

    Returns per-width requirements, the fitted geometric growth
    (``growth_factor``), the extrapolated n = 10 requirement, and the
    crossover widths for 1 M and 100 M challenge harvests.
    """
    xor_puf = XorArbiterPuf.create(max(n_values), N_STAGES, seed=seed)
    requirements = {}
    for n in n_values:
        train, test = collect_stable_xor_crps(
            xor_puf.subset(n), pool, PAPER_N_TRIALS, seed=seed + n
        )
        sizes = [
            s for s in (500, 1500, 4000, 10_000, 25_000, 60_000, 150_000)
            if s <= len(train)
        ]
        results = learning_curve(
            lambda: MlpClassifier(seed=seed + 100 + n, max_iter=300),
            train, test, sizes, seed=seed + 200 + n,
        )
        requirements[n] = crps_to_reach(
            [r.n_train for r in results],
            [r.accuracy for r in results],
            target_accuracy,
        )
    growth = fit_requirement_growth(requirements)
    return {
        "requirements": {str(n): requirements[n] for n in requirements},
        "growth_factor": growth.factor,
        "growth_amplitude": growth.amplitude,
        "extrapolated_n10": growth.requirement(10),
        "crossover_1M": security_crossover_width(growth, 1_000_000),
        "crossover_100M": security_crossover_width(growth, 100_000_000),
    }


def run_reliability_defense(
    n_harvest: int,
    n_queries: int = 15,
    n_pufs: int = 2,
    seed: int = 0,
) -> Dict[str, Any]:
    """Sec-2: Becker's reliability attack on an open chip vs the protocol.

    Returns the open-chip recovery/accuracy and the protocol-side
    reliability variance plus whether the protocol-fed attack failed.
    """
    chip = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="rel-exp")
    record = enroll_chip(
        chip, n_enroll_challenges=3000, n_validation_challenges=10_000,
        seed=seed + 1,
    )
    test_ch = random_challenges(5000, N_STAGES, seed=seed + 2)
    truth = chip.oracle().noise_free_response(test_ch)

    open_ch = random_challenges(n_harvest, N_STAGES, seed=seed + 3)
    bits, h = estimate_reliability(chip, open_ch, n_queries)
    open_attack = ReliabilityAttack(n_pufs, seed=seed + 4)
    open_attack.fit(open_ch, h, bits)
    open_accuracy = open_attack.score(test_ch, truth)

    selected_ch, _ = record.selector().select(min(n_harvest, 20_000), seed=seed + 5)
    _, h_selected = estimate_reliability(chip, selected_ch, n_queries)
    protocol_failed = False
    try:
        ReliabilityAttack(n_pufs, seed=seed + 6).fit(
            selected_ch, h_selected, chip.xor_response(selected_ch)
        )
    except (ValueError, RuntimeError):
        protocol_failed = True
    return {
        "n_harvest": n_harvest,
        "n_queries": n_queries,
        "open_recovered": open_attack.n_recovered,
        "open_accuracy": open_accuracy,
        "open_reliability_variance": float(h.var()),
        "protocol_reliability_variance": float(h_selected.var()),
        "protocol_attack_failed": protocol_failed,
    }


def run_bifurcation_attack(
    budgets: Sequence[int],
    n_pufs: int = 2,
    seed: int = 0,
) -> Dict[str, Any]:
    """Abl-7: MLP attack on clean vs noise-bifurcated transcripts.

    Returns a per-budget ``series`` of {budget, clean, bifurcated}
    accuracies plus the honest-device match fraction of the protocol.
    """
    chip = PufChip.create(n_pufs, N_STAGES, seed=seed, chip_id="bif-exp")
    record = enroll_chip(
        chip, n_enroll_challenges=3000, n_validation_challenges=10_000,
        seed=seed + 1,
    )
    test_ch = random_challenges(10_000, N_STAGES, seed=seed + 2)
    truth = chip.oracle().noise_free_response(test_ch)
    test_phi = parity_features(test_ch)

    clean_train, _ = collect_stable_xor_crps(
        chip.oracle(), int(max(budgets) / (0.9 * 0.8**n_pufs)) + 5000,
        PAPER_N_TRIALS, seed=seed + 3,
    )
    session = run_noise_bifurcation_session(
        chip, record.xor_model, (max(budgets) + 1) // 2 + 500, seed=seed + 4
    )
    noisy_view = attacker_view(session)

    series: List[Dict[str, float]] = []
    for budget in budgets:
        clean_x, clean_y = attack_matrix(clean_train.subset(np.arange(budget)))
        clean_acc = (
            MlpClassifier(seed=seed + 5, max_iter=250)
            .fit(clean_x, clean_y)
            .score(test_phi, truth)
        )
        noisy_x, noisy_y = attack_matrix(noisy_view.subset(np.arange(budget)))
        noisy_acc = (
            MlpClassifier(seed=seed + 6, max_iter=250)
            .fit(noisy_x, noisy_y)
            .score(test_phi, truth)
        )
        series.append(
            {"budget": budget, "clean": clean_acc, "bifurcated": noisy_acc}
        )
    return {
        "series": series,
        "honest_match": session.match_fraction,
        "guess_baseline": 0.75,
    }

"""Stability experiments: Figs. 2 and 3 of the paper.

Programmatic runners behind ``benchmarks/bench_fig02_*`` and
``bench_fig03_*``; import these to reproduce the figures from your own
code or notebooks::

    from repro.experiments.stability import run_fig02, run_fig03
    result = run_fig02(n_challenges=200_000)
    print(result["stable_zero"], result["stable_one"])

Every runner returns a plain JSON-serialisable dict so results can be
archived next to the benchmark artefacts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.analysis.stability import decay_base, stable_fraction_by_n, summarize_soft_responses
from repro.crp.challenges import random_challenges
from repro.engine import DEFAULT_CHUNK_SIZE, EvaluationEngine
from repro.silicon.chip import PAPER_LOT_SIZE, fabricate_lot
from repro.silicon.noise import PAPER_N_TRIALS
from repro.silicon.xorpuf import XorArbiterPuf
from repro.utils.validation import check_positive_int

__all__ = ["run_fig02", "run_fig03", "N_STAGES", "make_engine"]

#: Stage count of the paper's test chips, used by every experiment.
N_STAGES = 32


def make_engine(
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> EvaluationEngine:
    """Engine from the runners' common ``jobs``/``chunk_size`` knobs.

    *checkpoint_dir* enables crash-safe campaigns: per-chunk results are
    journalled there, and a rerun pointed at the same directory resumes
    from the last good chunk (see :mod:`repro.engine.runtime`).
    """
    return EvaluationEngine(
        jobs=jobs,
        chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        checkpoint_dir=checkpoint_dir,
    )


def run_fig02(
    n_challenges: int,
    n_chips: int = PAPER_LOT_SIZE,
    seed: int = 0,
    *,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Fig. 2: soft-response distribution of single MUX PUFs.

    Measures ``n_challenges`` (split over a *n_chips* lot) with
    100 k-deep counters at nominal and averages the per-chip
    histograms.  The whole lot is measured on one shared challenge
    matrix in a single engine campaign, so the challenge features are
    computed once for all chips.

    Returns
    -------
    dict with keys ``n_chips``, ``n_challenges_per_chip``,
    ``stable_zero`` (paper: 0.397), ``stable_one`` (paper: 0.401) and
    ``histogram`` (the 101-bin averaged histogram).
    """
    check_positive_int(n_challenges, "n_challenges")
    lot = fabricate_lot(n_chips, 1, N_STAGES, seed=seed)
    per_challenge = max(n_challenges // n_chips, 1000)
    challenges = random_challenges(per_challenge, N_STAGES, seed=seed + 1)
    engine = make_engine(jobs, chunk_size, checkpoint_dir)
    per_chip = engine.measure_lot(
        lot, challenges, PAPER_N_TRIALS, seed=seed + 2
    )
    zeros, ones, histograms = [], [], []
    for datasets in per_chip:
        summary = summarize_soft_responses(datasets[0])
        zeros.append(summary.stable_zero_fraction)
        ones.append(summary.stable_one_fraction)
        histograms.append(summary.histogram_fractions)
    return {
        "n_chips": n_chips,
        "n_challenges_per_chip": per_challenge,
        "stable_zero": float(np.mean(zeros)),
        "stable_one": float(np.mean(ones)),
        "histogram": np.mean(histograms, axis=0).tolist(),
    }


def run_fig03(
    n_challenges: int,
    n_pufs: int = 10,
    seed: int = 0,
    *,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Fig. 3: measured stable-CRP fraction vs XOR width.

    Measures every constituent of one *n_pufs*-wide XOR PUF on a shared
    challenge matrix (one engine campaign, features computed once) and
    composes the per-PUF stability masks.

    Returns
    -------
    dict with keys ``n_challenges``, ``fractions`` (str(n) -> fraction;
    paper: ~0.8**n) and ``decay_base`` (paper: 0.800).
    """
    check_positive_int(n_challenges, "n_challenges")
    xor_puf = XorArbiterPuf.create(n_pufs, N_STAGES, seed=seed)
    challenges = random_challenges(n_challenges, N_STAGES, seed=seed + 1)
    engine = make_engine(jobs, chunk_size, checkpoint_dir)
    per_puf = engine.measure_xor_constituents(
        xor_puf, challenges, PAPER_N_TRIALS, seed=seed + 10
    )
    fractions = stable_fraction_by_n(per_puf)
    return {
        "n_challenges": n_challenges,
        "fractions": {str(n): fractions[n] for n in fractions},
        "decay_base": decay_base(fractions),
    }

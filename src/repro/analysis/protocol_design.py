"""Analytic error rates for HD-threshold authentication policies.

The paper's central protocol claim: because selected CRPs never flip,
the server can demand a perfect match, and "a very stringent approval
criterion ... improves the overall security of the system".  This
module turns that into numbers a protocol designer can budget with:

* **false-accept rate** (FAR): an impostor device answers each
  challenge like a coin flip (inter-chip HD ~ 0.5), so it passes a
  (n, tolerance) policy with the binomial tail
  ``P(Binom(n, 0.5) <= tolerance)``;
* **false-reject rate** (FRR): an honest device flips each selected CRP
  with probability at most ``p_flip`` (0 for 100 %-stable CRPs at the
  measured condition; the salvage scheme's bound otherwise), failing
  with ``P(Binom(n, p_flip) > tolerance)``;
* sizing helpers that invert these for a target rate.

These close the loop on the paper's argument: relaxing the criterion to
tolerate noise (the HD-threshold schemes) costs FAR exponentially,
which is why selection + zero-HD dominates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "false_accept_rate",
    "false_reject_rate",
    "challenges_for_far",
    "max_tolerance_for_far",
]


def false_accept_rate(
    n_challenges: int,
    tolerance: int = 0,
    impostor_match_probability: float = 0.5,
) -> float:
    """Probability a guessing impostor passes an (n, tolerance) policy.

    ``impostor_match_probability`` is the per-challenge chance the
    impostor's bit matches the prediction: 0.5 for an unrelated chip,
    higher for a partially accurate model clone (pass the clone's
    accuracy to budget against modeled adversaries).
    """
    n = check_positive_int(n_challenges, "n_challenges")
    if not 0 <= tolerance <= n:
        raise ValueError(f"tolerance must lie in [0, {n}], got {tolerance}")
    p_match = check_probability(
        impostor_match_probability, "impostor_match_probability"
    )
    # Pass <=> mismatches <= tolerance <=> matches >= n - tolerance.
    return float(stats.binom.cdf(tolerance, n, 1.0 - p_match))


def false_reject_rate(
    n_challenges: int,
    tolerance: int = 0,
    p_flip: float = 0.0,
) -> float:
    """Probability an honest device exceeds the mismatch budget.

    ``p_flip`` is the per-challenge flip probability of the *selected*
    CRPs (0 under the paper's policy at the validated conditions).
    """
    n = check_positive_int(n_challenges, "n_challenges")
    if not 0 <= tolerance <= n:
        raise ValueError(f"tolerance must lie in [0, {n}], got {tolerance}")
    p_flip = check_probability(p_flip, "p_flip")
    return float(stats.binom.sf(tolerance, n, p_flip))


def challenges_for_far(
    target_far: float,
    tolerance: int = 0,
    impostor_match_probability: float = 0.5,
    max_challenges: int = 100_000,
) -> Optional[int]:
    """Smallest challenge count meeting *target_far* at a given tolerance.

    Returns ``None`` if even *max_challenges* cannot reach the target
    (possible when the tolerance is generous or the adversary's match
    probability is high -- the regime the paper's stringency avoids).
    """
    target = check_probability(target_far, "target_far")
    if target <= 0.0:
        raise ValueError("target_far must be positive (zero FAR needs n = inf)")
    check_positive_int(max_challenges, "max_challenges")
    low, high = max(tolerance, 1), max_challenges
    if false_accept_rate(high, tolerance, impostor_match_probability) > target:
        return None
    while low < high:
        mid = (low + high) // 2
        if false_accept_rate(mid, tolerance, impostor_match_probability) <= target:
            high = mid
        else:
            low = mid + 1
    return int(low)


def max_tolerance_for_far(
    n_challenges: int,
    target_far: float,
    impostor_match_probability: float = 0.5,
) -> Optional[int]:
    """Largest mismatch budget still meeting *target_far* with n challenges.

    Returns ``None`` when even zero tolerance misses the target (too few
    challenges).
    """
    n = check_positive_int(n_challenges, "n_challenges")
    target = check_probability(target_far, "target_far")
    best: Optional[int] = None
    for tolerance in range(0, n + 1):
        if false_accept_rate(n, tolerance, impostor_match_probability) <= target:
            best = tolerance
        else:
            break
    return best

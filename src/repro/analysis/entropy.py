"""Response-entropy diagnostics for PUF output streams.

Standard statistical checks on response bit-strings, complementing the
Hamming-distance metrics: if an XOR PUF's responses were predictable
from simple structure (bias, serial correlation, short patterns), no
authentication policy could save it.  Used by the quality tests and
available for user studies.

* :func:`shannon_entropy_rate` -- block-entropy estimate of bits per
  response bit (ideal 1.0);
* :func:`autocorrelation` -- serial correlation of the response stream
  at given lags (ideal ~0);
* :func:`challenge_sensitivity` -- avalanche metric: probability that
  flipping one random challenge bit flips the response (ideal 0.5 for
  a strong PUF; single arbiter PUFs are known to fall short on the
  last stages, which XOR-ing repairs).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    as_challenge_array,
    check_positive_int,
    is_binary_array,
)

__all__ = ["shannon_entropy_rate", "autocorrelation", "challenge_sensitivity"]


def shannon_entropy_rate(responses: np.ndarray, block_size: int = 8) -> float:
    """Block-entropy estimate of the response stream, in bits per bit.

    Splits the stream into non-overlapping *block_size*-bit words and
    computes the empirical Shannon entropy of the word distribution
    divided by the block size.  Needs several times ``2**block_size``
    samples to be meaningful; raises otherwise.
    """
    responses = np.asarray(responses)
    if responses.ndim != 1 or not is_binary_array(responses):
        raise ValueError("responses must be a 1-D 0/1 array")
    block_size = check_positive_int(block_size, "block_size")
    n_blocks = len(responses) // block_size
    if n_blocks < 4 * (1 << block_size):
        raise ValueError(
            f"need at least {4 * (1 << block_size)} blocks of {block_size} bits "
            f"for a usable estimate, got {n_blocks}"
        )
    words = responses[: n_blocks * block_size].reshape(n_blocks, block_size)
    weights = (1 << np.arange(block_size))[::-1]
    codes = words @ weights
    counts = np.bincount(codes, minlength=1 << block_size)
    probabilities = counts[counts > 0] / n_blocks
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    return entropy / block_size


def autocorrelation(responses: np.ndarray, lags: Sequence[int]) -> np.ndarray:
    """Serial correlation of the +/-1-coded response stream at *lags*."""
    responses = np.asarray(responses)
    if responses.ndim != 1 or not is_binary_array(responses):
        raise ValueError("responses must be a 1-D 0/1 array")
    signed = 2.0 * responses - 1.0
    signed = signed - signed.mean()
    denom = float(signed @ signed)
    out = []
    for lag in lags:
        lag = check_positive_int(lag, "lag")
        if lag >= len(signed):
            raise ValueError(f"lag {lag} exceeds stream length {len(signed)}")
        out.append(float(signed[:-lag] @ signed[lag:]) / denom if denom else 0.0)
    return np.array(out)


def challenge_sensitivity(
    puf,
    n_challenges: int,
    *,
    bit_index: int | None = None,
    seed: SeedLike = None,
) -> float:
    """Avalanche probability: one flipped challenge bit flips the response.

    Parameters
    ----------
    puf:
        Anything with ``noise_free_response(challenges)`` and
        ``n_stages`` (an :class:`~repro.silicon.arbiter.ArbiterPuf` or
        :class:`~repro.silicon.xorpuf.XorArbiterPuf`).
    n_challenges:
        Challenge pairs to test.
    bit_index:
        Which challenge bit to flip; ``None`` picks a fresh random
        position per pair.
    """
    check_positive_int(n_challenges, "n_challenges")
    rng = as_generator(seed)
    challenges = rng.integers(0, 2, size=(n_challenges, puf.n_stages), dtype=np.int8)
    flipped = challenges.copy()
    if bit_index is None:
        positions = rng.integers(0, puf.n_stages, size=n_challenges)
    else:
        if not 0 <= bit_index < puf.n_stages:
            raise ValueError(
                f"bit_index {bit_index} outside [0, {puf.n_stages})"
            )
        positions = np.full(n_challenges, bit_index)
    flipped[np.arange(n_challenges), positions] ^= 1
    base = puf.noise_free_response(as_challenge_array(challenges))
    alt = puf.noise_free_response(as_challenge_array(flipped))
    return float((base != alt).mean())

"""Attack-cost extrapolation: operationalising the "n >= 10" conclusion.

The paper's security argument reads a family of learning curves
(Fig. 4) and concludes that "more than 10 individual PUFs are needed".
This module turns that reading into arithmetic:

1. from each width's learning curve, interpolate the training-CRP
   budget needed to reach a target accuracy (:func:`crps_to_reach`);
2. the per-width budgets grow geometrically -- fit ``log(budget)``
   against ``n`` (:func:`fit_requirement_growth`);
3. the attacker's *supply* of stable CRPs shrinks as
   ``harvest * 0.8**n`` (:func:`stable_crp_supply`);
4. the width where the requirement overtakes the supply is the design
   point (:func:`security_crossover_width`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from repro.utils.validation import check_in_range, check_positive_int

__all__ = [
    "crps_to_reach",
    "RequirementGrowth",
    "fit_requirement_growth",
    "stable_crp_supply",
    "security_crossover_width",
]


def crps_to_reach(
    train_sizes: Sequence[int],
    accuracies: Sequence[float],
    target: float,
) -> Optional[float]:
    """Training-set size at which a learning curve crosses *target*.

    Log-linear interpolation between the bracketing measured points;
    ``None`` if the curve never reaches the target (the attack failed
    at every measured budget).  The curve is first made monotone by a
    running maximum, since learning curves are noisy but fundamentally
    non-decreasing in data.
    """
    sizes = np.asarray(train_sizes, dtype=np.float64)
    accs = np.asarray(accuracies, dtype=np.float64)
    if sizes.shape != accs.shape or sizes.ndim != 1 or len(sizes) == 0:
        raise ValueError("train_sizes and accuracies must be matching 1-D arrays")
    if not (np.diff(sizes) > 0).all():
        raise ValueError("train_sizes must be strictly increasing")
    check_in_range(target, "target", 0.0, 1.0, inclusive=False)
    accs = np.maximum.accumulate(accs)
    if accs[-1] < target:
        return None
    index = int(np.argmax(accs >= target))
    if index == 0:
        return float(sizes[0])
    x0, x1 = np.log(sizes[index - 1]), np.log(sizes[index])
    y0, y1 = accs[index - 1], accs[index]
    fraction = (target - y0) / (y1 - y0) if y1 > y0 else 1.0
    return float(np.exp(x0 + fraction * (x1 - x0)))


@dataclasses.dataclass(frozen=True)
class RequirementGrowth:
    """Fitted geometric growth of the attack's CRP requirement.

    ``requirement(n) ~ amplitude * factor**n``.
    """

    factor: float
    amplitude: float
    n_points: int

    def requirement(self, n: float) -> float:
        """Extrapolated CRP requirement at width *n*."""
        return self.amplitude * self.factor ** float(n)


def fit_requirement_growth(
    requirements_by_n: Dict[int, float],
) -> RequirementGrowth:
    """Fit ``log(requirement)`` against n over the measured widths."""
    items = [(n, r) for n, r in requirements_by_n.items() if r is not None and r > 0]
    if len(items) < 2:
        raise ValueError(
            "need at least two widths with successful attacks to fit growth"
        )
    ns = np.array([n for n, _ in items], dtype=np.float64)
    logs = np.log([r for _, r in items])
    slope, intercept = np.polyfit(ns, logs, 1)
    return RequirementGrowth(
        factor=float(np.exp(slope)),
        amplitude=float(np.exp(intercept)),
        n_points=len(items),
    )


def stable_crp_supply(
    n: float,
    harvest_budget: int,
    stable_base: float = 0.800,
) -> float:
    """Stable CRPs an attacker gets from measuring *harvest_budget* challenges.

    Only challenges stable on *every* constituent yield usable training
    labels (the paper trains and tests on stable CRPs only), so the
    supply decays as ``stable_base**n`` -- Fig. 3's law.
    """
    check_positive_int(harvest_budget, "harvest_budget")
    check_in_range(stable_base, "stable_base", 0.0, 1.0, inclusive=False)
    return harvest_budget * stable_base ** float(n)


def security_crossover_width(
    growth: RequirementGrowth,
    harvest_budget: int,
    *,
    stable_base: float = 0.800,
    max_n: int = 64,
) -> Optional[int]:
    """Smallest width where the requirement exceeds the attacker's supply.

    Returns ``None`` if no width up to *max_n* is safe (requirement
    growth slower than supply decay -- an alarm, not a number).
    """
    for n in range(1, check_positive_int(max_n, "max_n") + 1):
        if growth.requirement(n) > stable_crp_supply(n, harvest_budget, stable_base):
            return n
    return None

"""Standard PUF quality metrics.

The paper's evaluation centres on stability and attack resistance, but
any credible PUF study also reports the classical statistical metrics
(see e.g. Lao & Parhi, "Statistical Analysis of MUX-based Physical
Unclonable Functions"):

* **uniformity** -- balance of 0s and 1s in one device's responses
  (ideal 0.5);
* **reliability** -- 1 minus the intra-chip Hamming distance between a
  reference readout and re-evaluations (ideal 1.0);
* **uniqueness** -- mean pairwise inter-chip Hamming distance over the
  same challenges (ideal 0.5);
* **bit aliasing** -- per-challenge bias across chips (ideal 0.5 each).

All functions operate on plain {0, 1} response arrays so they apply to
single PUFs, XOR PUFs and model predictions alike.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import is_binary_array

__all__ = [
    "uniformity",
    "intra_chip_hd",
    "reliability",
    "inter_chip_hd",
    "uniqueness",
    "bit_aliasing",
]


def _check_responses(responses: np.ndarray, name: str, ndim: int) -> np.ndarray:
    arr = np.asarray(responses)
    if arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not is_binary_array(arr):
        raise ValueError(f"{name} must contain only 0/1 bits")
    return arr.astype(np.int8, copy=False)


def uniformity(responses: np.ndarray) -> float:
    """Fraction of 1s in a response vector (ideal 0.5)."""
    return float(_check_responses(responses, "responses", 1).mean())


def intra_chip_hd(reference: np.ndarray, reevaluations: np.ndarray) -> float:
    """Mean normalised Hamming distance of re-evaluations to a reference.

    Parameters
    ----------
    reference:
        ``(n,)`` golden responses (e.g. enrollment readout).
    reevaluations:
        ``(m, n)`` repeated readouts of the same challenges.
    """
    ref = _check_responses(reference, "reference", 1)
    reev = _check_responses(reevaluations, "reevaluations", 2)
    if reev.shape[1] != len(ref):
        raise ValueError(
            f"reevaluations have {reev.shape[1]} bits, reference has {len(ref)}"
        )
    return float((reev != ref[np.newaxis, :]).mean())


def reliability(reference: np.ndarray, reevaluations: np.ndarray) -> float:
    """``1 - intra_chip_hd`` (ideal 1.0)."""
    return 1.0 - intra_chip_hd(reference, reevaluations)


def inter_chip_hd(responses_by_chip: np.ndarray) -> np.ndarray:
    """Pairwise normalised Hamming distances between chips.

    Parameters
    ----------
    responses_by_chip:
        ``(n_chips, n_challenges)`` responses of each chip to the same
        challenges.

    Returns
    -------
    numpy.ndarray
        1-D array of the ``n_chips * (n_chips - 1) / 2`` pairwise
        distances.
    """
    resp = _check_responses(responses_by_chip, "responses_by_chip", 2)
    n_chips = resp.shape[0]
    if n_chips < 2:
        raise ValueError("need at least two chips for inter-chip distances")
    distances = []
    for i in range(n_chips):
        diffs = resp[i + 1 :] != resp[i][np.newaxis, :]
        distances.append(diffs.mean(axis=1))
    return np.concatenate(distances)


def uniqueness(responses_by_chip: np.ndarray) -> float:
    """Mean pairwise inter-chip Hamming distance (ideal 0.5)."""
    return float(inter_chip_hd(responses_by_chip).mean())


def bit_aliasing(responses_by_chip: np.ndarray) -> np.ndarray:
    """Per-challenge fraction of chips answering 1 (each ideal 0.5)."""
    resp = _check_responses(responses_by_chip, "responses_by_chip", 2)
    return resp.mean(axis=0)

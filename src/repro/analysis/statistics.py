"""Small statistical helpers shared by analyses and benchmarks.

Everything here is deliberately dependency-light: Wilson score
intervals for the many proportion estimates in the reproduction, a
log-linear exponential-decay fit for the 0.800**n-style curves, and a
bootstrap confidence interval for derived statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "wilson_interval",
    "ExponentialDecayFit",
    "fit_exponential_decay",
    "bootstrap_interval",
]


def wilson_interval(
    successes: int,
    n: int,
    z: float = 1.96,
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0 or n successes), unlike the normal
    approximation -- important here because stable fractions at large
    XOR widths are tiny.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 <= successes <= n:
        raise ValueError(f"successes must lie in [0, {n}], got {successes}")
    p = successes / n
    denom = 1.0 + z**2 / n
    center = (p + z**2 / (2 * n)) / denom
    half = z * np.sqrt(p * (1 - p) / n + z**2 / (4 * n**2)) / denom
    # The Wilson interval always contains the point estimate; pin the
    # boundary cases exactly so rounding never violates that.
    lo = 0.0 if successes == 0 else max(0.0, min(center - half, p))
    hi = 1.0 if successes == n else min(1.0, max(center + half, p))
    return (lo, hi)


@dataclasses.dataclass(frozen=True)
class ExponentialDecayFit:
    """Result of fitting ``fraction ~ amplitude * base**n``.

    Attributes
    ----------
    base:
        Decay base per unit of n (the paper's 0.800 / 0.545 / 0.342).
    amplitude:
        Fitted value at n = 0 (1.0 for a perfect composition law).
    residual_rms:
        RMS residual in log space (goodness-of-fit diagnostic).
    """

    base: float
    amplitude: float
    residual_rms: float

    def predict(self, n: np.ndarray) -> np.ndarray:
        """Fitted fractions at widths *n*."""
        return self.amplitude * self.base ** np.asarray(n, dtype=np.float64)


def fit_exponential_decay(
    n_values: np.ndarray,
    fractions: np.ndarray,
) -> ExponentialDecayFit:
    """Least-squares fit of ``log fraction`` against ``n``.

    Zero fractions are excluded (they carry no log-space information);
    at least two positive points are required.
    """
    n_values = np.asarray(n_values, dtype=np.float64)
    fractions = np.asarray(fractions, dtype=np.float64)
    if n_values.shape != fractions.shape or n_values.ndim != 1:
        raise ValueError("n_values and fractions must be matching 1-D arrays")
    keep = fractions > 0
    if keep.sum() < 2:
        raise ValueError("need at least two positive fractions to fit a decay")
    x, y = n_values[keep], np.log(fractions[keep])
    slope, intercept = np.polyfit(x, y, 1)
    residuals = y - (slope * x + intercept)
    return ExponentialDecayFit(
        base=float(np.exp(slope)),
        amplitude=float(np.exp(intercept)),
        residual_rms=float(np.sqrt(np.mean(residuals**2))),
    )


def bootstrap_interval(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: SeedLike = None,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for *statistic*."""
    values = np.asarray(values)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = as_generator(seed)
    indices = rng.integers(0, len(values), size=(n_resamples, len(values)))
    stats = np.array([statistic(values[row]) for row in indices])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )

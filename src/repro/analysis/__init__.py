"""Stability analysis, PUF quality metrics and statistical helpers."""

from repro.analysis.attack_cost import (
    RequirementGrowth,
    crps_to_reach,
    fit_requirement_growth,
    security_crossover_width,
    stable_crp_supply,
)

from repro.analysis.entropy import (
    autocorrelation,
    challenge_sensitivity,
    shannon_entropy_rate,
)
from repro.analysis.protocol_design import (
    challenges_for_far,
    false_accept_rate,
    false_reject_rate,
    max_tolerance_for_far,
)
from repro.analysis.metrics import (
    bit_aliasing,
    inter_chip_hd,
    intra_chip_hd,
    reliability,
    uniformity,
    uniqueness,
)
from repro.analysis.stability import (
    StabilitySummary,
    analytic_stable_fraction_by_n,
    decay_base,
    stable_fraction_by_n,
    summarize_soft_responses,
    xor_stable_fraction,
)
from repro.analysis.statistics import (
    ExponentialDecayFit,
    bootstrap_interval,
    fit_exponential_decay,
    wilson_interval,
)

__all__ = [
    "RequirementGrowth",
    "crps_to_reach",
    "fit_requirement_growth",
    "security_crossover_width",
    "stable_crp_supply",
    "autocorrelation",
    "challenge_sensitivity",
    "shannon_entropy_rate",
    "challenges_for_far",
    "false_accept_rate",
    "false_reject_rate",
    "max_tolerance_for_far",
    "bit_aliasing",
    "inter_chip_hd",
    "intra_chip_hd",
    "reliability",
    "uniformity",
    "uniqueness",
    "StabilitySummary",
    "analytic_stable_fraction_by_n",
    "decay_base",
    "stable_fraction_by_n",
    "summarize_soft_responses",
    "xor_stable_fraction",
    "ExponentialDecayFit",
    "bootstrap_interval",
    "fit_exponential_decay",
    "wilson_interval",
]

"""Stability analysis of soft responses (Figs. 2, 3, 12).

Tools for the paper's central stability quantities:

* soft-response histograms and the Pr(stable 0) / Pr(stable 1) split of
  Fig. 2,
* stable-CRP fraction of an n-input XOR PUF composed from per-PUF
  stability masks, and the 0.800**n decay of Fig. 3,
* the analytic counterpart via the noise model, used to cross-check
  the Monte-Carlo measurements.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.statistics import fit_exponential_decay, wilson_interval
from repro.crp.dataset import SoftResponseDataset
from repro.silicon.counters import soft_response_histogram
from repro.silicon.noise import stable_probability

__all__ = [
    "StabilitySummary",
    "summarize_soft_responses",
    "xor_stable_fraction",
    "stable_fraction_by_n",
    "analytic_stable_fraction_by_n",
    "decay_base",
]


@dataclasses.dataclass(frozen=True)
class StabilitySummary:
    """Fig.-2-style summary of one soft-response dataset.

    Attributes
    ----------
    n_challenges:
        Dataset size.
    stable_zero_fraction / stable_one_fraction:
        Challenges whose counter read exactly 0 / exactly T (the
        paper's 39.7 % / 40.1 %).
    stable_fraction:
        Their sum (paper: ~80 %).
    histogram_centers / histogram_fractions:
        The 0.01-binned soft-response histogram.
    """

    n_challenges: int
    stable_zero_fraction: float
    stable_one_fraction: float
    histogram_centers: np.ndarray
    histogram_fractions: np.ndarray

    @property
    def stable_fraction(self) -> float:
        return self.stable_zero_fraction + self.stable_one_fraction

    def stable_confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson interval for the stable fraction."""
        successes = int(round(self.stable_fraction * self.n_challenges))
        return wilson_interval(successes, self.n_challenges, z)


def summarize_soft_responses(
    dataset: SoftResponseDataset,
    bin_size: float = 0.01,
) -> StabilitySummary:
    """Compute the Fig.-2 summary for one PUF's soft responses."""
    counts = np.rint(dataset.soft_responses * dataset.n_trials)
    n = len(dataset)
    centers, fractions = soft_response_histogram(dataset.soft_responses, bin_size)
    return StabilitySummary(
        n_challenges=n,
        stable_zero_fraction=float((counts == 0).mean()) if n else float("nan"),
        stable_one_fraction=float((counts == dataset.n_trials).mean()) if n else float("nan"),
        histogram_centers=centers,
        histogram_fractions=fractions,
    )


def xor_stable_fraction(per_puf_datasets: Sequence[SoftResponseDataset]) -> float:
    """Fraction of challenges 100 %-stable on *every* constituent PUF.

    The datasets must share one challenge matrix (same campaign); the
    XOR PUF's response for a challenge is stable iff every constituent
    is stable on it.
    """
    if not per_puf_datasets:
        raise ValueError("need at least one per-PUF dataset")
    sizes = {len(d) for d in per_puf_datasets}
    if len(sizes) != 1:
        raise ValueError(f"datasets have differing sizes: {sizes}")
    mask = per_puf_datasets[0].stable_mask
    for dataset in per_puf_datasets[1:]:
        mask = mask & dataset.stable_mask
    return float(mask.mean()) if mask.size else float("nan")


def stable_fraction_by_n(
    per_puf_datasets: Sequence[SoftResponseDataset],
    n_values: Optional[Sequence[int]] = None,
) -> Dict[int, float]:
    """Stable-CRP fraction of the n-input XOR PUF for each n (Fig. 3).

    ``n_values`` defaults to ``1..len(per_puf_datasets)``; each n uses
    the first n constituents, mirroring the paper's reuse of the same
    silicon across XOR widths.
    """
    n_max = len(per_puf_datasets)
    n_values = list(range(1, n_max + 1)) if n_values is None else list(n_values)
    out: Dict[int, float] = {}
    for n in n_values:
        if not 1 <= n <= n_max:
            raise ValueError(f"n={n} outside [1, {n_max}]")
        out[n] = xor_stable_fraction(per_puf_datasets[:n])
    return out


def analytic_stable_fraction_by_n(
    sigma_ratio: float,
    n_trials: int,
    n_values: Sequence[int],
) -> Dict[int, float]:
    """Model-predicted Fig.-3 curve: ``stable_probability ** n``.

    Valid when constituents are statistically independent (the paper
    observes "negligible correlation between the individual PUFs").
    """
    base = stable_probability(sigma_ratio, n_trials)
    return {int(n): base ** int(n) for n in n_values}


def decay_base(fractions_by_n: Dict[int, float]) -> float:
    """Fit ``fraction ~ base**n`` and return the base (paper: 0.800).

    Thin wrapper over
    :func:`repro.analysis.statistics.fit_exponential_decay`.
    """
    ns = np.array(sorted(fractions_by_n))
    fractions = np.array([fractions_by_n[int(n)] for n in ns])
    return fit_exponential_decay(ns, fractions).base

"""Product-of-linears logistic attack on XOR PUFs (Ruhrmair model, ref [3]).

For an n-input XOR PUF the signed response is the sign of the product of
the constituents' delay differences.  Ruhrmair et al. relax each sign to
a tanh and train the differentiable surrogate

    m(c) = prod_l tanh(w_l . phi(c)),      Pr(r = 1) = (1 - m) / 2

with logistic loss.  The landscape is non-convex, so the attack restarts
from several random initialisations and keeps the best training loss.
This is the second attack baseline next to the paper's MLP; the paper's
n >= 10 security recommendation should hold against both.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.utils.rng import SeedLike, derive_generator
from repro.utils.validation import check_positive_int

__all__ = ["XorLogisticAttack"]

_EPS = 1e-12


class XorLogisticAttack:
    """Gradient attack on an n-XOR PUF via the tanh-product surrogate.

    Parameters
    ----------
    n_pufs:
        Number of constituent PUFs assumed by the model (must match the
        target for the attack to converge).
    n_restarts:
        Independent random initialisations; the best final training
        loss wins.
    max_iter:
        L-BFGS iteration budget per restart.
    seed:
        Root seed for the restarts.

    Attributes
    ----------
    weights_:
        ``(n_pufs, n_features)`` learned constituent weights.
    restart_losses_:
        Final training loss of each restart (diagnostic).
    """

    def __init__(
        self,
        n_pufs: int,
        *,
        n_restarts: int = 5,
        max_iter: int = 400,
        seed: SeedLike = None,
    ) -> None:
        self.n_pufs = check_positive_int(n_pufs, "n_pufs")
        self.n_restarts = check_positive_int(n_restarts, "n_restarts")
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.seed = seed
        self.weights_: Optional[np.ndarray] = None
        self.restart_losses_: List[float] = []

    # ------------------------------------------------------------------
    # Loss and gradient
    # ------------------------------------------------------------------
    def _loss_grad(
        self,
        theta: np.ndarray,
        features: np.ndarray,
        targets_pm1: np.ndarray,
    ) -> Tuple[float, np.ndarray]:
        n, d = features.shape
        w = theta.reshape(self.n_pufs, d)
        scores = features @ w.T                     # (n, L)
        tanhs = np.tanh(scores)                     # (n, L)
        product = tanhs.prod(axis=1)                # (n,) = -E[signed response]
        # Signed model response m = product; Pr(r=1) = (1 - m)/2, so the
        # logistic margin for target y in {-1,+1} is -y * atanh-free form;
        # we use the squared-error-free logistic on z = -m mapped via
        # probability p = (1 - m)/2:
        #   loss = -log p      if y = +1  (r = 1)
        #   loss = -log (1-p)  if y = -1
        p = np.clip((1.0 - product) / 2.0, _EPS, 1.0 - _EPS)
        y01 = (targets_pm1 > 0)
        loss = float(-(np.log(p[y01]).sum() + np.log(1.0 - p[~y01]).sum()) / n)
        # d loss / d product:
        dl_dp = np.where(y01, -1.0 / p, 1.0 / (1.0 - p)) / n
        dl_dprod = dl_dp * (-0.5)
        # d product / d score_l = (prod_{j != l} tanh_j) * (1 - tanh_l^2)
        grad_w = np.empty_like(w)
        for layer in range(self.n_pufs):
            others = np.ones(n)
            for j in range(self.n_pufs):
                if j != layer:
                    others = others * tanhs[:, j]
            d_score = dl_dprod * others * (1.0 - tanhs[:, layer] ** 2)
            grad_w[layer] = d_score @ features
        return loss, grad_w.ravel()

    # ------------------------------------------------------------------
    # Estimator API
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, responses: np.ndarray) -> "XorLogisticAttack":
        """Train on parity features and {0, 1} XOR responses."""
        features = np.ascontiguousarray(features, dtype=np.float64)
        responses = np.asarray(responses)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got ndim={features.ndim}")
        if responses.shape != (len(features),):
            raise ValueError(
                f"responses shape {responses.shape} does not match "
                f"{len(features)} feature rows"
            )
        targets = 2.0 * responses.astype(np.float64) - 1.0
        d = features.shape[1]
        best_loss, best_theta = np.inf, None
        self.restart_losses_ = []
        for restart in range(self.n_restarts):
            rng = derive_generator(self.seed, "restart", restart)
            theta0 = rng.normal(0.0, 1.0 / np.sqrt(d), size=self.n_pufs * d)
            result = optimize.minimize(
                self._loss_grad,
                theta0,
                args=(features, targets),
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
            self.restart_losses_.append(float(result.fun))
            if result.fun < best_loss:
                best_loss, best_theta = float(result.fun), result.x
        self.weights_ = best_theta.reshape(self.n_pufs, d)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed model response; negative means predicted XOR = 1."""
        if self.weights_ is None:
            raise RuntimeError("attack is not fitted; call fit() first")
        features = np.asarray(features, dtype=np.float64)
        return np.tanh(features @ self.weights_.T).prod(axis=1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard {0, 1} XOR predictions."""
        return (self.decision_function(features) < 0).astype(np.int8)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """``Pr(xor response = 1)`` per row."""
        return (1.0 - self.decision_function(features)) / 2.0

    def score(self, features: np.ndarray, responses: np.ndarray) -> float:
        """Prediction accuracy on a labelled set."""
        responses = np.asarray(responses)
        return float((self.predict(features) == responses).mean())

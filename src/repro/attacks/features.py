"""Attacker-side feature pipeline.

Every attack in this package consumes parity-transformed challenges
(the "transformed challenge vectors ... widely used method for linear
MUX arbiter PUF modeling" of the paper) and 1-bit responses.  This
module centralises the dataset-to-matrix conversion so harness code and
user scripts do not duplicate it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.crp.dataset import CrpDataset
from repro.crp.transform import parity_features

__all__ = ["attack_matrix", "attack_matrices"]


def attack_matrix(dataset: CrpDataset) -> Tuple[np.ndarray, np.ndarray]:
    """(features, responses) ready for an attack's ``fit``/``score``.

    Features are the parity transform of the challenges; responses stay
    as {0, 1} int8.
    """
    return parity_features(dataset.challenges), dataset.responses


def attack_matrices(
    train: CrpDataset,
    test: CrpDataset,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(train features, train responses, test features, test responses).

    Validates that the two sets share a challenge width before paying
    for the transforms.
    """
    if train.n_stages != test.n_stages:
        raise ValueError(
            f"train ({train.n_stages} stages) and test ({test.n_stages} "
            "stages) challenge widths differ"
        )
    train_x, train_y = attack_matrix(train)
    test_x, test_y = attack_matrix(test)
    return train_x, train_y, test_x, test_y

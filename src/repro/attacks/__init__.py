"""Modeling attacks on arbiter and XOR arbiter PUFs.

Implements the paper's MLP attack (35-25-25, L-BFGS) plus the classical
logistic-regression attacks as baselines, and the stable-CRP experiment
harness of Sec. 2.3.
"""

from repro.attacks.cma import CmaEs, minimize_cma
from repro.attacks.features import attack_matrices, attack_matrix
from repro.attacks.reliability import ReliabilityAttack, estimate_reliability
from repro.attacks.harness import (
    AttackResult,
    LearningCurvePoint,
    collect_stable_xor_crps,
    learning_curve,
)
from repro.attacks.logistic import LogisticAttack
from repro.attacks.mlp import PAPER_HIDDEN_LAYERS, MlpClassifier
from repro.attacks.xor_logistic import XorLogisticAttack

__all__ = [
    "CmaEs",
    "minimize_cma",
    "ReliabilityAttack",
    "estimate_reliability",
    "attack_matrices",
    "attack_matrix",
    "AttackResult",
    "LearningCurvePoint",
    "collect_stable_xor_crps",
    "learning_curve",
    "LogisticAttack",
    "PAPER_HIDDEN_LAYERS",
    "MlpClassifier",
    "XorLogisticAttack",
]

"""Attack experiment harness (reproduces the protocol of Sec. 2.3).

The paper's attack experiments follow a specific recipe:

1. measure 1 M random challenges on each individual PUF with 100 k-deep
   counters;
2. keep only challenges that are **100 % stable on every individual
   PUF** (unstable CRPs "mislead the model training", and only stable
   CRPs are ever used in authentication anyway);
3. split 90 % / 10 % into train / test *before* the stability filter,
   so the stable train set shrinks like 0.8**n;
4. train on (transformed challenge, 1-bit XOR response) pairs and report
   test-set prediction accuracy as a function of the training-set size.

:func:`collect_stable_xor_crps` implements steps 1-3 against a
simulated XOR PUF; :func:`learning_curve` runs step 4 over a sweep of
training sizes, recording the paper's ms-per-CRP training-speed metric
along the way.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.features import attack_matrices
from repro.crp.challenges import random_challenges
from repro.crp.dataset import CrpDataset, train_test_split_indices
from repro.engine import DEFAULT_CHUNK_SIZE, EvaluationEngine
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.silicon.xorpuf import XorArbiterPuf
from repro.utils.rng import SeedLike, derive_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "collect_stable_xor_crps",
    "AttackResult",
    "LearningCurvePoint",
    "learning_curve",
]


def collect_stable_xor_crps(
    xor_puf: XorArbiterPuf,
    n_challenges: int,
    n_trials: int,
    *,
    train_fraction: float = 0.9,
    condition: OperatingCondition = NOMINAL_CONDITION,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    checkpoint_dir=None,
    seed: SeedLike = None,
) -> Tuple[CrpDataset, CrpDataset]:
    """Measure, stability-filter and split CRPs exactly as the paper does.

    The 1 M-challenge stability sweep (step 1-2) streams through the
    chunked evaluation engine: challenge features are computed once per
    chunk and shared across all constituents, memory stays bounded by
    *chunk_size*, and ``jobs > 1`` fans chunks over worker processes
    with bit-identical results.  *checkpoint_dir* journals per-chunk
    results so an interrupted sweep resumes from the last good chunk.

    Returns
    -------
    (train, test):
        Stable-only CRP datasets whose sizes are roughly
        ``n_challenges * train_fraction * 0.8**n`` and the complement --
        matching the paper's "900,000 * 0.800^n" accounting.

    Notes
    -----
    Responses of stable challenges are noise-free by construction (the
    challenge never flips), so the XOR label is computed analytically
    once stability is established.
    """
    n_challenges = check_positive_int(n_challenges, "n_challenges")
    n_trials = check_positive_int(n_trials, "n_trials")
    challenges = random_challenges(
        n_challenges, xor_puf.n_stages, derive_generator(seed, "challenges")
    )
    engine = EvaluationEngine(
        jobs=jobs,
        chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        checkpoint_dir=checkpoint_dir,
    )
    stable = engine.stable_mask(
        xor_puf, challenges, n_trials, condition,
        seed=derive_generator(seed, "measurement"),
    )
    responses = engine.noise_free_xor_response(xor_puf, challenges, condition)
    train_idx, test_idx = train_test_split_indices(
        n_challenges, train_fraction, derive_generator(seed, "split")
    )
    train_mask = np.zeros(n_challenges, dtype=bool)
    train_mask[train_idx] = True
    keep_train = train_mask & stable
    keep_test = ~train_mask & stable
    train = CrpDataset(challenges[keep_train], responses[keep_train])
    test = CrpDataset(challenges[keep_test], responses[keep_test])
    return train, test


@dataclasses.dataclass(frozen=True)
class AttackResult:
    """Outcome of one attack training run.

    Attributes
    ----------
    n_train:
        Training CRPs used.
    accuracy:
        Test-set prediction accuracy.
    fit_seconds:
        Wall-clock training time.
    ms_per_crp:
        Training time normalised per CRP (the paper reports
        0.395 ms/CRP for its MLP).
    """

    n_train: int
    accuracy: float
    fit_seconds: float

    @property
    def ms_per_crp(self) -> float:
        return 1000.0 * self.fit_seconds / max(self.n_train, 1)


@dataclasses.dataclass(frozen=True)
class LearningCurvePoint:
    """One point of an accuracy-vs-training-size curve (Fig. 4)."""

    n_pufs: int
    result: AttackResult


def learning_curve(
    attack_factory: Callable[[], object],
    train: CrpDataset,
    test: CrpDataset,
    train_sizes: Sequence[int],
    *,
    seed: SeedLike = None,
) -> List[AttackResult]:
    """Train fresh attacks on nested prefixes of *train* (Fig. 4 sweep).

    Parameters
    ----------
    attack_factory:
        Zero-argument callable returning an unfitted attack with
        ``fit``/``score`` (e.g. ``lambda: MlpClassifier(seed=0)``).
    train / test:
        Stable-only CRP sets from :func:`collect_stable_xor_crps`.
    train_sizes:
        Sizes to sweep; each must be <= ``len(train)``.
    seed:
        Shuffle seed for drawing the nested subsets.
    """
    sizes = [check_positive_int(s, "train size") for s in train_sizes]
    if max(sizes) > len(train):
        raise ValueError(
            f"largest train size {max(sizes)} exceeds available "
            f"{len(train)} stable training CRPs"
        )
    order = derive_generator(seed, "order").permutation(len(train))
    test_x, test_y = None, None
    results: List[AttackResult] = []
    for size in sizes:
        subset = train.subset(np.sort(order[:size]))
        train_x, train_y, test_x, test_y = attack_matrices(subset, test)
        attack = attack_factory()
        start = time.perf_counter()
        attack.fit(train_x, train_y)
        elapsed = time.perf_counter() - start
        accuracy = float(attack.score(test_x, test_y))
        results.append(AttackResult(size, accuracy, elapsed))
    return results

"""A compact CMA-ES optimiser (covariance matrix adaptation).

Implements the standard (mu/mu_w, lambda)-CMA-ES of Hansen & Ostermeier
-- rank-one and rank-mu covariance updates, cumulative step-size
adaptation -- in plain NumPy, sized for the few-dozen-dimensional
search spaces of PUF delay vectors.  It exists to power the
reliability-based modeling attack of Becker (CHES 2015; the paper's
ref [9]), which is the strongest known attack on XOR arbiter PUFs and
the natural adversary for a soft-response-centric design.

The implementation follows the tutorial parameterisation (Hansen, "The
CMA Evolution Strategy: A Tutorial"), minimising the given objective.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["CmaEs", "minimize_cma"]


class CmaEs:
    """Ask/tell interface to one CMA-ES run.

    Parameters
    ----------
    x0:
        Initial mean of the search distribution.
    sigma0:
        Initial global step size.
    population:
        Offspring per generation (default ``4 + floor(3 ln d)``).
    seed:
        Sampling seed.
    """

    def __init__(
        self,
        x0: np.ndarray,
        sigma0: float,
        *,
        population: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        self.mean = np.asarray(x0, dtype=np.float64).copy()
        if self.mean.ndim != 1:
            raise ValueError(f"x0 must be 1-D, got ndim={self.mean.ndim}")
        if sigma0 <= 0:
            raise ValueError(f"sigma0 must be positive, got {sigma0}")
        self.sigma = float(sigma0)
        d = len(self.mean)
        self.dim = d
        lam = population or 4 + int(3 * np.log(d))
        self.population = check_positive_int(lam, "population")
        if self.population < 2:
            raise ValueError("population must be at least 2")
        self._rng = as_generator(seed)

        # Selection weights (log-rank, positive half).
        mu = self.population // 2
        raw = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        self.weights = raw / raw.sum()
        self.mu = mu
        self.mu_eff = 1.0 / float((self.weights**2).sum())

        # Adaptation constants.
        self.c_sigma = (self.mu_eff + 2.0) / (d + self.mu_eff + 5.0)
        self.d_sigma = (
            1.0
            + 2.0 * max(0.0, np.sqrt((self.mu_eff - 1.0) / (d + 1.0)) - 1.0)
            + self.c_sigma
        )
        self.c_c = (4.0 + self.mu_eff / d) / (d + 4.0 + 2.0 * self.mu_eff / d)
        self.c_1 = 2.0 / ((d + 1.3) ** 2 + self.mu_eff)
        self.c_mu = min(
            1.0 - self.c_1,
            2.0 * (self.mu_eff - 2.0 + 1.0 / self.mu_eff)
            / ((d + 2.0) ** 2 + self.mu_eff),
        )
        self.chi_n = np.sqrt(d) * (1.0 - 1.0 / (4.0 * d) + 1.0 / (21.0 * d**2))

        # Dynamic state.
        self.p_sigma = np.zeros(d)
        self.p_c = np.zeros(d)
        self.cov = np.eye(d)
        self._eig_stale = True
        self._B = np.eye(d)
        self._D = np.ones(d)
        self.generation = 0
        self.best_x = self.mean.copy()
        self.best_f = np.inf

    # ------------------------------------------------------------------
    def _refresh_eigen(self) -> None:
        if not self._eig_stale:
            return
        self.cov = (self.cov + self.cov.T) / 2.0
        eigvals, eigvecs = np.linalg.eigh(self.cov)
        eigvals = np.maximum(eigvals, 1e-20)
        self._B = eigvecs
        self._D = np.sqrt(eigvals)
        self._eig_stale = False

    def ask(self) -> np.ndarray:
        """Sample one generation of candidates, shape (population, dim)."""
        self._refresh_eigen()
        z = self._rng.normal(size=(self.population, self.dim))
        y = z * self._D[np.newaxis, :] @ self._B.T
        self._last_y = y
        return self.mean[np.newaxis, :] + self.sigma * y

    def tell(self, candidates: np.ndarray, fitnesses: np.ndarray) -> None:
        """Update the distribution from evaluated candidates (minimise)."""
        candidates = np.asarray(candidates, dtype=np.float64)
        fitnesses = np.asarray(fitnesses, dtype=np.float64)
        if candidates.shape != (self.population, self.dim):
            raise ValueError(
                f"candidates must have shape {(self.population, self.dim)}, "
                f"got {candidates.shape}"
            )
        if fitnesses.shape != (self.population,):
            raise ValueError("one fitness per candidate required")
        order = np.argsort(fitnesses)
        if fitnesses[order[0]] < self.best_f:
            self.best_f = float(fitnesses[order[0]])
            self.best_x = candidates[order[0]].copy()

        selected = candidates[order[: self.mu]]
        y_selected = (selected - self.mean[np.newaxis, :]) / self.sigma
        y_w = self.weights @ y_selected
        self.mean = self.mean + self.sigma * y_w

        # Step-size path (in the isotropic coordinate system).
        self._refresh_eigen()
        c_inv_sqrt_y = self._B @ ((self._B.T @ y_w) / self._D)
        self.p_sigma = (1.0 - self.c_sigma) * self.p_sigma + np.sqrt(
            self.c_sigma * (2.0 - self.c_sigma) * self.mu_eff
        ) * c_inv_sqrt_y
        self.sigma *= float(
            np.exp(
                (self.c_sigma / self.d_sigma)
                * (np.linalg.norm(self.p_sigma) / self.chi_n - 1.0)
            )
        )

        # Covariance paths and update.
        h_sigma = float(
            np.linalg.norm(self.p_sigma)
            / np.sqrt(1.0 - (1.0 - self.c_sigma) ** (2 * (self.generation + 1)))
            < (1.4 + 2.0 / (self.dim + 1.0)) * self.chi_n
        )
        self.p_c = (1.0 - self.c_c) * self.p_c + h_sigma * np.sqrt(
            self.c_c * (2.0 - self.c_c) * self.mu_eff
        ) * y_w
        rank_one = np.outer(self.p_c, self.p_c)
        rank_mu = (y_selected * self.weights[:, np.newaxis]).T @ y_selected
        delta_h = (1.0 - h_sigma) * self.c_c * (2.0 - self.c_c)
        self.cov = (
            (1.0 - self.c_1 - self.c_mu) * self.cov
            + self.c_1 * (rank_one + delta_h * self.cov)
            + self.c_mu * rank_mu
        )
        self._eig_stale = True
        self.generation += 1


def minimize_cma(
    objective: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    sigma0: float,
    *,
    max_generations: int = 200,
    population: Optional[int] = None,
    f_target: float = -np.inf,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, float]:
    """Run CMA-ES; *objective* maps a (population, dim) batch to fitnesses.

    Returns the best candidate and its fitness.  Stops at
    *max_generations* or when the best fitness drops to *f_target*.
    """
    es = CmaEs(x0, sigma0, population=population, seed=seed)
    for _ in range(check_positive_int(max_generations, "max_generations")):
        candidates = es.ask()
        es.tell(candidates, np.asarray(objective(candidates), dtype=np.float64))
        if es.best_f <= f_target:
            break
    return es.best_x, es.best_f

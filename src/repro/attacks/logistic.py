"""Logistic-regression attack on a single arbiter PUF (refs [2-5]).

Because a single arbiter PUF is linear in the parity features, logistic
regression on ``phi(c)`` recovers the delay parameters up to scale from
hard CRPs alone.  The paper cites this as the standard modeling attack
(and its own enrollment method deliberately uses *linear* regression on
soft responses instead -- see :mod:`repro.core.regression`); here it
serves as

* the classical attack baseline for single PUFs, and
* the hard-response extraction arm of the soft-vs-hard ablation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["LogisticAttack"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class LogisticAttack:
    """L2-regularised logistic regression on parity features.

    Parameters
    ----------
    alpha:
        L2 penalty weight (divided by the sample count).
    max_iter:
        L-BFGS iteration budget.
    seed:
        Initialisation seed (small Gaussian start).

    Attributes
    ----------
    weights_:
        Learned weight vector over the parity features (the recovered
        delay parameters, up to a positive scale).
    """

    def __init__(
        self,
        *,
        alpha: float = 1e-6,
        max_iter: int = 500,
        seed: SeedLike = None,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.seed = seed
        self.weights_: Optional[np.ndarray] = None

    def _loss_grad(
        self,
        w: np.ndarray,
        features: np.ndarray,
        targets_pm1: np.ndarray,
    ) -> Tuple[float, np.ndarray]:
        n = len(features)
        margins = targets_pm1 * (features @ w)
        loss = float(np.logaddexp(0.0, -margins).mean())
        reg = 0.5 * self.alpha / n
        loss += reg * float(w @ w)
        coeff = -targets_pm1 * _sigmoid(-margins) / n
        grad = features.T @ coeff + 2 * reg * w
        return loss, grad

    def fit(self, features: np.ndarray, responses: np.ndarray) -> "LogisticAttack":
        """Train on parity features and {0, 1} responses."""
        features = np.ascontiguousarray(features, dtype=np.float64)
        responses = np.asarray(responses)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got ndim={features.ndim}")
        if responses.shape != (len(features),):
            raise ValueError(
                f"responses shape {responses.shape} does not match "
                f"{len(features)} feature rows"
            )
        targets = 2.0 * responses.astype(np.float64) - 1.0
        rng = as_generator(self.seed)
        w0 = rng.normal(0.0, 1e-3, size=features.shape[1])
        result = optimize.minimize(
            self._loss_grad,
            w0,
            args=(features, targets),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.weights_ = result.x
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Linear scores (positive means class 1)."""
        if self.weights_ is None:
            raise RuntimeError("attack is not fitted; call fit() first")
        return np.asarray(features, dtype=np.float64) @ self.weights_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """``Pr(response = 1)`` per row."""
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard {0, 1} predictions."""
        return (self.decision_function(features) > 0).astype(np.int8)

    def score(self, features: np.ndarray, responses: np.ndarray) -> float:
        """Prediction accuracy on a labelled set."""
        responses = np.asarray(responses)
        return float((self.predict(features) == responses).mean())

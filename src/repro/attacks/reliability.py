"""Reliability-based CMA-ES attack on XOR PUFs (Becker, CHES 2015).

The paper's ref [9] ("The gap between promise and reality...") breaks
XOR arbiter PUFs with a fundamentally different signal than response
bits: **response reliability**.  The attacker queries each challenge
several times and estimates how often it flips.  A challenge is
unreliable iff *some* constituent's delay difference is small, so the
measured reliability correlates with ``|phi(c) . w_l|`` of *one
constituent at a time* -- a divide-and-conquer signal that scales
linearly in n instead of exponentially.

Attack loop (per Becker):

1. estimate reliability ``h_i`` of each challenge from repeated reads;
2. run CMA-ES over candidate weight vectors ``w``, with fitness =
   Pearson correlation between ``|phi . w|`` and ``h``;
3. different restarts converge to different constituents; keep the
   mutually distinct ones;
4. resolve each constituent's sign (and any missing constituents'
   aggregate parity) from a few hard responses.

Defence relevance, demonstrated by ``bench_security_reliability``: the
paper's protocol only ever exposes *stable* CRPs, whose reliability is
constant 1 -- zero variance, zero correlation, no gradient for step 2.
Challenge selection incidentally starves the strongest known attack.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.cma import CmaEs
from repro.crp.transform import parity_features
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.rng import SeedLike, as_generator, derive_generator
from repro.utils.validation import as_challenge_array, check_positive_int

__all__ = ["ReliabilityAttack", "estimate_reliability"]


def estimate_reliability(
    responder,
    challenges: np.ndarray,
    n_queries: int,
    *,
    condition: OperatingCondition = NOMINAL_CONDITION,
) -> Tuple[np.ndarray, np.ndarray]:
    """Query *responder* repeatedly; return (majority bits, reliability).

    Reliability is Becker's ``h = |mean - 0.5|`` in [0, 0.5]: 0.5 means
    the challenge never flipped, 0 means a coin flip.
    """
    check_positive_int(n_queries, "n_queries")
    challenges = as_challenge_array(challenges)
    counts = np.zeros(len(challenges), dtype=np.int64)
    for _ in range(n_queries):
        counts += responder.xor_response(challenges, condition)
    mean = counts / n_queries
    return (mean >= 0.5).astype(np.int8), np.abs(mean - 0.5)


@dataclasses.dataclass(frozen=True)
class _Constituent:
    """One recovered constituent model with its training correlation."""

    weights: np.ndarray
    correlation: float


class ReliabilityAttack:
    """Divide-and-conquer reliability attack on an n-XOR arbiter PUF.

    Parameters
    ----------
    n_pufs:
        XOR width assumed by the attacker.
    n_restarts:
        Independent CMA-ES runs; needs to comfortably exceed *n_pufs*
        because restarts rediscover constituents.
    generations:
        CMA-ES generations per restart.
    population:
        CMA-ES offspring per generation (default: CMA heuristic).
    min_correlation:
        Restarts whose final correlation falls below this are deemed
        non-converged and dropped.
    cap_quantile:
        Saturation quantile of the hypothetical reliability (see
        ``_fitness``).
    seed:
        Root seed.

    Attributes
    ----------
    constituents_:
        Distinct recovered constituent weight vectors.
    signs_:
        Sign pattern applied to the constituents' hard predictions.
    residual_bit_:
        Parity correction absorbing unrecovered constituents.
    """

    def __init__(
        self,
        n_pufs: int,
        *,
        n_restarts: int = 16,
        generations: int = 150,
        population: Optional[int] = 20,
        min_correlation: float = 0.15,
        distinct_cosine: float = 0.85,
        cap_quantile: float = 0.3,
        mask_quantile: float = 0.3,
        seed: SeedLike = None,
    ) -> None:
        self.n_pufs = check_positive_int(n_pufs, "n_pufs")
        self.n_restarts = check_positive_int(n_restarts, "n_restarts")
        self.generations = check_positive_int(generations, "generations")
        self.population = population
        self.min_correlation = float(min_correlation)
        self.distinct_cosine = float(distinct_cosine)
        if not 0.0 < cap_quantile <= 1.0:
            raise ValueError(f"cap_quantile must be in (0, 1], got {cap_quantile}")
        self.cap_quantile = float(cap_quantile)
        if not 0.0 < mask_quantile < 1.0:
            raise ValueError(f"mask_quantile must be in (0, 1), got {mask_quantile}")
        self.mask_quantile = float(mask_quantile)
        self.seed = seed
        self.constituents_: List[np.ndarray] = []
        self.correlations_: List[float] = []
        self.residual_bit_: int = 0

    # ------------------------------------------------------------------
    def _fitness(
        self, candidates: np.ndarray, phi: np.ndarray, h: np.ndarray
    ) -> np.ndarray:
        """Negative |Pearson correlation| of the hypothetical reliability.

        Becker's insight: measured reliability saturates once a
        constituent's margin exceeds the noise, so the candidate's
        hypothetical reliability must saturate too.  We cap ``|phi.w|``
        at a per-candidate quantile (scale-invariant), which nearly
        doubles the attainable correlation vs the raw margin.
        """
        raw = np.abs(phi @ candidates.T)  # (n, pop)
        caps = np.quantile(raw, self.cap_quantile, axis=0, keepdims=True)
        scores = np.minimum(raw, caps)
        scores = scores - scores.mean(axis=0, keepdims=True)
        h_centered = h - h.mean()
        denom = np.linalg.norm(scores, axis=0) * np.linalg.norm(h_centered)
        with np.errstate(invalid="ignore", divide="ignore"):
            corr = (h_centered @ scores) / np.where(denom > 0, denom, np.inf)
        return -np.abs(corr)

    def _is_new(self, weights: np.ndarray) -> bool:
        unit = weights / np.linalg.norm(weights)
        for known in self.constituents_:
            known_unit = known / np.linalg.norm(known)
            if abs(float(unit @ known_unit)) > self.distinct_cosine:
                return False
        return True

    # ------------------------------------------------------------------
    def fit(
        self,
        challenges: np.ndarray,
        reliabilities: np.ndarray,
        hard_responses: np.ndarray,
    ) -> "ReliabilityAttack":
        """Recover constituents from (challenge, reliability, response) data.

        Parameters
        ----------
        challenges:
            ``(n, k)`` random challenges (must include unreliable ones;
            protocol-selected stable CRPs carry no signal).
        reliabilities:
            Per-challenge reliability estimates from
            :func:`estimate_reliability`.
        hard_responses:
            Majority response bits, used for sign resolution.
        """
        challenges = as_challenge_array(challenges)
        phi = parity_features(challenges)
        h = np.asarray(reliabilities, dtype=np.float64)
        if h.std() == 0.0:
            raise ValueError(
                "reliability signal has zero variance: the dataset contains "
                "no unstable CRPs (exactly the situation the paper's "
                "challenge selection creates for an attacker)"
            )
        dim = phi.shape[1]
        self.constituents_ = []
        self.correlations_ = []
        # Divide and conquer: once a constituent is recovered, keep only
        # the challenges it answers reliably, so the residual
        # unreliability points at the remaining constituents.
        active = np.ones(len(phi), dtype=bool)
        for restart in range(self.n_restarts):
            phi_active, h_active = phi[active], h[active]
            if len(h_active) < 4 * dim or h_active.std() == 0.0:
                break  # signal exhausted; sign resolution absorbs the rest
            rng = derive_generator(self.seed, "restart", restart)
            es = CmaEs(
                rng.normal(0.0, 1.0, size=dim),
                sigma0=0.5,
                population=self.population,
                seed=rng,
            )
            for _ in range(self.generations):
                candidates = es.ask()
                es.tell(candidates, self._fitness(candidates, phi_active, h_active))
            correlation = -es.best_f
            if correlation < self.min_correlation:
                continue
            if self._is_new(es.best_x):
                self.constituents_.append(es.best_x.copy())
                self.correlations_.append(float(correlation))
                margins = np.abs(phi @ es.best_x)
                active &= margins > np.quantile(margins, self.mask_quantile)
            if len(self.constituents_) == self.n_pufs:
                break
        if not self.constituents_:
            raise RuntimeError(
                "no CMA-ES restart converged; increase n_restarts/generations "
                "or provide more (and noisier) CRPs"
            )
        self._resolve_signs(phi, np.asarray(hard_responses))
        return self

    def _resolve_signs(self, phi: np.ndarray, responses: np.ndarray) -> None:
        """Pick the overall parity that best matches the hard responses.

        Constituent sign flips only toggle the *overall* XOR parity, so
        one residual bit suffices (it also absorbs the parity of any
        constituents the restarts failed to find).
        """
        bits = self._constituent_bits(phi)
        xor = np.bitwise_xor.reduce(bits, axis=0)
        agree = float((xor == responses).mean())
        self.residual_bit_ = int(agree < 0.5)

    def _constituent_bits(self, phi: np.ndarray) -> np.ndarray:
        return np.stack([(phi @ w > 0).astype(np.int8) for w in self.constituents_])

    # ------------------------------------------------------------------
    def predict(self, challenges: np.ndarray) -> np.ndarray:
        """Hard XOR predictions for *challenges*."""
        if not self.constituents_:
            raise RuntimeError("attack is not fitted; call fit() first")
        phi = parity_features(as_challenge_array(challenges))
        xor = np.bitwise_xor.reduce(self._constituent_bits(phi), axis=0)
        return np.bitwise_xor(xor, self.residual_bit_).astype(np.int8)

    def score(self, challenges: np.ndarray, responses: np.ndarray) -> float:
        """Prediction accuracy against reference responses."""
        responses = np.asarray(responses)
        return float((self.predict(challenges) == responses).mean())

    @property
    def n_recovered(self) -> int:
        """Distinct constituents recovered so far."""
        return len(self.constituents_)

"""Multi-layer-perceptron modeling attack (paper Sec. 2.3, Fig. 4).

The paper attacks its XOR PUFs with a 3-hidden-layer perceptron of
35-25-25 units trained by limited-memory BFGS (scikit-learn's
``MLPClassifier``).  scikit-learn is not available offline, so this is a
from-scratch NumPy implementation with the same ingredients:

* inputs: parity-transformed challenge vectors,
* targets: 1-bit XOR responses,
* tanh hidden units, logistic output, L2 penalty,
* full-batch L-BFGS via ``scipy.optimize.minimize`` with analytic
  gradients (backpropagation).

The class follows the familiar ``fit`` / ``predict`` / ``score``
conventions so it can stand in wherever the paper used the sklearn
estimator.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["MlpClassifier", "PAPER_HIDDEN_LAYERS"]

#: Hidden-layer widths used in the paper ("35 (first layer), 25 (second
#: layer) and 25 (third layer) nodes").
PAPER_HIDDEN_LAYERS: Tuple[int, ...] = (35, 25, 25)


def _softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    return np.logaddexp(0.0, x)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclasses.dataclass
class _Shapes:
    """Weight/bias shapes of the network, for packing parameters."""

    layer_dims: List[int]

    def sizes(self) -> List[Tuple[Tuple[int, int], int]]:
        """(weight shape, bias length) per layer."""
        dims = self.layer_dims
        return [((dims[i], dims[i + 1]), dims[i + 1]) for i in range(len(dims) - 1)]

    @property
    def n_params(self) -> int:
        return sum(w[0] * w[1] + b for w, b in self.sizes())


class MlpClassifier:
    """Binary MLP classifier trained with full-batch L-BFGS.

    Parameters
    ----------
    hidden_layers:
        Hidden-layer widths; defaults to the paper's (35, 25, 25).
    alpha:
        L2 penalty weight (sklearn-style, divided by the sample count).
    max_iter:
        L-BFGS iteration budget.
    tol:
        L-BFGS gradient tolerance.
    seed:
        Initialisation seed (Glorot-uniform weights).

    Attributes
    ----------
    loss_:
        Final training loss (after :meth:`fit`).
    n_iter_:
        L-BFGS iterations used.
    fit_seconds_:
        Wall-clock training time, for the paper's ms-per-CRP metric.
    """

    def __init__(
        self,
        hidden_layers: Sequence[int] = PAPER_HIDDEN_LAYERS,
        *,
        alpha: float = 1e-4,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: SeedLike = None,
    ) -> None:
        self.hidden_layers = tuple(
            check_positive_int(h, "hidden layer width") for h in hidden_layers
        )
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.seed = seed
        self._weights: Optional[List[np.ndarray]] = None
        self._biases: Optional[List[np.ndarray]] = None
        self.loss_: Optional[float] = None
        self.n_iter_: Optional[int] = None
        self.fit_seconds_: Optional[float] = None

    # ------------------------------------------------------------------
    # Parameter packing
    # ------------------------------------------------------------------
    def _init_params(self, n_features: int, rng: np.random.Generator) -> np.ndarray:
        shapes = _Shapes([n_features, *self.hidden_layers, 1])
        chunks = []
        for (fan_in, fan_out), bias_len in shapes.sizes():
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            chunks.append(rng.uniform(-bound, bound, size=fan_in * fan_out))
            chunks.append(np.zeros(bias_len))
        self._shapes = shapes
        return np.concatenate(chunks)

    def _unpack(self, theta: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        weights, biases = [], []
        offset = 0
        for (fan_in, fan_out), bias_len in self._shapes.sizes():
            size = fan_in * fan_out
            weights.append(theta[offset : offset + size].reshape(fan_in, fan_out))
            offset += size
            biases.append(theta[offset : offset + bias_len])
            offset += bias_len
        return weights, biases

    # ------------------------------------------------------------------
    # Loss and gradient (backprop)
    # ------------------------------------------------------------------
    def _loss_grad(
        self,
        theta: np.ndarray,
        features: np.ndarray,
        targets_pm1: np.ndarray,
    ) -> Tuple[float, np.ndarray]:
        weights, biases = self._unpack(theta)
        n = len(features)
        activations = [features]
        h = features
        for w, b in zip(weights[:-1], biases[:-1]):
            h = np.tanh(h @ w + b)
            activations.append(h)
        logits = (h @ weights[-1] + biases[-1]).ravel()

        # Logistic loss on +/-1 targets: mean softplus(-y * logit).
        margins = targets_pm1 * logits
        loss = float(_softplus(-margins).mean())
        reg = 0.5 * self.alpha / n
        loss += reg * sum(float((w**2).sum()) for w in weights)

        # Backprop.
        d_logit = (-targets_pm1 * _sigmoid(-margins) / n)[:, np.newaxis]
        grads_w: List[np.ndarray] = [None] * len(weights)  # type: ignore[list-item]
        grads_b: List[np.ndarray] = [None] * len(biases)  # type: ignore[list-item]
        grads_w[-1] = activations[-1].T @ d_logit + 2 * reg * weights[-1]
        grads_b[-1] = d_logit.sum(axis=0)
        delta = d_logit @ weights[-1].T
        for layer in range(len(weights) - 2, -1, -1):
            delta = delta * (1.0 - activations[layer + 1] ** 2)
            grads_w[layer] = activations[layer].T @ delta + 2 * reg * weights[layer]
            grads_b[layer] = delta.sum(axis=0)
            if layer:
                delta = delta @ weights[layer].T
        grad = np.concatenate(
            [np.concatenate([w.ravel(), b]) for w, b in zip(grads_w, grads_b)]
        )
        return loss, grad

    # ------------------------------------------------------------------
    # Public estimator API
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, responses: np.ndarray) -> "MlpClassifier":
        """Train on parity features and {0, 1} responses."""
        features = np.ascontiguousarray(features, dtype=np.float64)
        responses = np.asarray(responses)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got ndim={features.ndim}")
        if responses.shape != (len(features),):
            raise ValueError(
                f"responses shape {responses.shape} does not match "
                f"{len(features)} feature rows"
            )
        targets = 2.0 * responses.astype(np.float64) - 1.0
        rng = as_generator(self.seed)
        theta0 = self._init_params(features.shape[1], rng)
        start = time.perf_counter()
        result = optimize.minimize(
            self._loss_grad,
            theta0,
            args=(features, targets),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.fit_seconds_ = time.perf_counter() - start
        self._weights, self._biases = self._unpack(result.x)
        self.loss_ = float(result.fun)
        self.n_iter_ = int(result.nit)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw output logits (positive means class 1)."""
        if self._weights is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        h = np.asarray(features, dtype=np.float64)
        for w, b in zip(self._weights[:-1], self._biases[:-1]):
            h = np.tanh(h @ w + b)
        return (h @ self._weights[-1] + self._biases[-1]).ravel()

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """``Pr(response = 1)`` per row."""
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard {0, 1} predictions."""
        return (self.decision_function(features) > 0).astype(np.int8)

    def score(self, features: np.ndarray, responses: np.ndarray) -> float:
        """Prediction accuracy on a labelled set."""
        responses = np.asarray(responses)
        return float((self.predict(features) == responses).mean())

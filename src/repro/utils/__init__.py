"""Cross-cutting utilities: reproducible RNG plumbing and validation."""

from repro.utils.rng import (
    SeedLike,
    as_generator,
    derive_generator,
    derive_seed_sequence,
    key_to_entropy,
    spawn_generators,
)
from repro.utils.validation import (
    as_challenge_array,
    as_float_array,
    check_in_range,
    check_positive_int,
    check_probability,
)

__all__ = [
    "SeedLike",
    "as_generator",
    "derive_generator",
    "derive_seed_sequence",
    "key_to_entropy",
    "spawn_generators",
    "as_challenge_array",
    "as_float_array",
    "check_in_range",
    "check_positive_int",
    "check_probability",
]

"""Reproducible random-number-generator plumbing.

Every stochastic object in the library (chips, noise processes, challenge
streams, attack initialisations) draws its randomness from a
:class:`numpy.random.Generator`.  This module centralises how those
generators are created and derived so that

* a single integer seed reproduces an entire experiment, and
* independent subsystems (e.g. the ten chips of a lot, or the noise of
  each evaluation batch) receive *statistically independent* streams.

The derivation scheme is based on :class:`numpy.random.SeedSequence`
``spawn``/``generate_state`` machinery, with a stable string-keyed variant
so that adding a new consumer does not silently shift the randomness of
existing ones.
"""

from __future__ import annotations

import zlib
from typing import Iterator, Optional, Sequence, Union

import numpy as np

__all__ = [
    "SeedLike",
    "as_generator",
    "derive_generator",
    "derive_seed_sequence",
    "spawn_generators",
    "key_to_entropy",
]

#: Anything accepted as a source of randomness by the public API.
SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh OS-entropy generator; an existing generator
    is passed through unchanged (shared state, deliberately); anything
    else is fed to :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def key_to_entropy(key: str) -> int:
    """Map a string *key* to a stable 32-bit entropy word.

    Uses CRC-32, which is stable across Python versions and processes
    (unlike ``hash``).  Collisions are acceptable: the key entropy is
    always mixed with the experiment seed.
    """
    return zlib.crc32(key.encode("utf-8"))


def derive_seed_sequence(
    seed: SeedLike,
    *keys: Union[str, int],
) -> np.random.SeedSequence:
    """Derive a child :class:`~numpy.random.SeedSequence` for a named consumer.

    Parameters
    ----------
    seed:
        Root seed (``None`` for OS entropy).
    *keys:
        A path of names/indices identifying the consumer, e.g.
        ``("chip", 3, "noise")``.  Equal paths yield equal sequences;
        different paths yield independent ones.
    """
    if isinstance(seed, np.random.Generator):
        # Derive from the generator's bit stream (consumes state).
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    words = [key_to_entropy(k) if isinstance(k, str) else int(k) for k in keys]
    entropy = root.entropy if root.entropy is not None else 0
    return np.random.SeedSequence(entropy=entropy, spawn_key=tuple(words))


def derive_generator(seed: SeedLike, *keys: Union[str, int]) -> np.random.Generator:
    """Return an independent generator for the consumer identified by *keys*."""
    return np.random.default_rng(derive_seed_sequence(seed, *keys))


def spawn_generators(
    seed: SeedLike,
    count: int,
    *keys: Union[str, int],
) -> Iterator[np.random.Generator]:
    """Yield *count* independent generators under a common key path."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    for index in range(count):
        yield derive_generator(seed, *keys, index)

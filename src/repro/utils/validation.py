"""Shared argument-validation helpers.

These keep the public API's error messages uniform and the validation
logic out of the scientific code paths.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

__all__ = [
    "is_binary_array",
    "check_positive_int",
    "check_probability",
    "check_in_range",
    "as_challenge_array",
    "as_float_array",
]


def check_positive_int(value: Any, name: str) -> int:
    """Return *value* as ``int`` after checking it is a positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value: Any, name: str) -> float:
    """Return *value* as ``float`` after checking it lies in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(
    value: Any,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    inclusive: bool = True,
) -> float:
    """Return *value* as ``float`` after checking it lies in the given range."""
    value = float(value)
    if inclusive:
        if low is not None and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if high is not None and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
    else:
        if low is not None and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
        if high is not None and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return value


def is_binary_array(arr: np.ndarray) -> bool:
    """Whether every element of *arr* is exactly 0 or 1 (any dtype)."""
    if arr.dtype == np.bool_:
        return True
    if np.issubdtype(arr.dtype, np.integer):
        low, high = arr.min(), arr.max()
        return bool(low >= 0 and high <= 1)
    values = np.asarray(arr, dtype=np.float64)
    return bool(((values == 0.0) | (values == 1.0)).all())


def as_challenge_array(
    challenges: Any,
    n_stages: Optional[int] = None,
    *,
    validate: bool = True,
) -> np.ndarray:
    """Coerce *challenges* to a 2-D int8 array of {0, 1} bits.

    A single challenge (1-D) is promoted to shape ``(1, k)``.  If
    *n_stages* is given, the trailing dimension must match it.

    ``validate=False`` skips the full 0/1 content scan (shape and dtype
    handling are kept).  It exists for *internal* hot paths whose input
    was produced by trusted code or already validated at a public
    boundary -- the evaluation engine validates a challenge matrix once
    and then re-slices it per chunk, and the selectors classify batches
    drawn from their own challenge streams.  Public APIs always call
    with the default.
    """
    arr = np.asarray(challenges)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ValueError(f"challenges must be 1-D or 2-D, got ndim={arr.ndim}")
    if validate and arr.size and not is_binary_array(arr):
        raise ValueError("challenges must contain only 0/1 bits")
    if n_stages is not None and arr.shape[1] != n_stages:
        raise ValueError(
            f"challenges have {arr.shape[1]} stages, expected {n_stages}"
        )
    return arr.astype(np.int8, copy=False)


def as_float_array(values: Any, name: str, ndim: Optional[int] = None) -> np.ndarray:
    """Coerce *values* to a float64 array, optionally checking dimensionality."""
    arr = np.asarray(values, dtype=np.float64)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-D, got ndim={arr.ndim}")
    return arr

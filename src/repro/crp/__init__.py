"""Challenge/response-pair substrate: generation, transform, datasets."""

from repro.crp.challenges import (
    ChallengeStream,
    all_challenges,
    decode_challenges,
    encode_challenges,
    random_challenges,
    unique_random_challenges,
)
from repro.crp.io import (
    load_crps_csv,
    load_soft_responses_csv,
    save_crps_csv,
    save_soft_responses_csv,
)
from repro.crp.dataset import (
    CrpDataset,
    SoftResponseDataset,
    is_stable_soft,
    train_test_split_indices,
)
from repro.crp.transform import from_signed, n_features, parity_features, to_signed

__all__ = [
    "ChallengeStream",
    "all_challenges",
    "decode_challenges",
    "encode_challenges",
    "random_challenges",
    "unique_random_challenges",
    "load_crps_csv",
    "load_soft_responses_csv",
    "save_crps_csv",
    "save_soft_responses_csv",
    "CrpDataset",
    "SoftResponseDataset",
    "is_stable_soft",
    "train_test_split_indices",
    "from_signed",
    "n_features",
    "parity_features",
    "to_signed",
]

"""The linear-additive-model challenge transform (parity feature map).

For a ``k``-stage MUX arbiter PUF with challenge bits
``c = (c_1, ..., c_k)`` in {0, 1}, the delay difference at the arbiter is
linear not in ``c`` but in the *transformed challenge vector* ``phi(c)``
[Ruhrmair et al.; refs 1-3 of the paper]:

    b_j     = 1 - 2*c_j                      (challenge bit in +/-1 form)
    phi_i   = prod_{j=i}^{k} b_j             for i = 1..k
    phi_k+1 = 1                              (bias / arbiter offset term)

so that ``delta(c) = w . phi(c)`` for a weight vector ``w`` of ``k + 1``
delay parameters.  Every learning component in the paper (the linear
regression of Sec. 4 and the MLP attack of Sec. 2.3) operates on
``phi(c)``, which is why this transform lives in the shared ``crp``
substrate rather than with either consumer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import as_challenge_array

__all__ = [
    "to_signed",
    "from_signed",
    "parity_features",
    "n_features",
]


def to_signed(challenges: np.ndarray) -> np.ndarray:
    """Map {0, 1} challenge bits to the {+1, -1} convention (0 -> +1)."""
    challenges = as_challenge_array(challenges)
    # int8 arithmetic cannot overflow here (values are 0/2 and +/-1).
    return 1 - 2 * challenges


def from_signed(signed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_signed`: map {+1, -1} back to {0, 1}."""
    signed = np.asarray(signed)
    if signed.size and not np.isin(signed, (-1, 1)).all():
        raise ValueError("signed challenge bits must be +/-1")
    return ((1 - signed) // 2).astype(np.int8)


def n_features(n_stages: int) -> int:
    """Feature dimensionality of the parity transform: ``k + 1``."""
    if n_stages <= 0:
        raise ValueError(f"n_stages must be positive, got {n_stages}")
    return n_stages + 1


def parity_features(
    challenges: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute the parity feature matrix ``phi`` for a batch of challenges.

    Parameters
    ----------
    challenges:
        Array of shape ``(n, k)`` with {0, 1} entries (a single 1-D
        challenge is also accepted).
    out:
        Optional preallocated float64 buffer of shape ``(n, k + 1)``.
        The chunked evaluation engine passes the same buffer for every
        chunk so the hot loop allocates nothing.

    Returns
    -------
    numpy.ndarray
        Float64 array of shape ``(n, k + 1)``; column ``i < k`` holds the
        suffix product ``prod_{j>=i} (1 - 2 c_j)`` and the final column is
        the constant 1.
    """
    challenges = as_challenge_array(challenges)
    n, k = challenges.shape
    if out is None:
        out = np.empty((n, k + 1), dtype=np.float64)
    elif out.shape != (n, k + 1) or out.dtype != np.float64:
        raise ValueError(
            f"out must be a float64 array of shape ({n}, {k + 1}), got "
            f"{out.dtype} {out.shape}"
        )
    # Signed bits are written straight into the feature buffer as float64
    # (single conversion; the old path went int8 -> int16 -> int8 -> float64).
    np.multiply(challenges, -2.0, out=out[:, :k])
    out[:, :k] += 1.0
    out[:, k] = 1.0
    # Suffix products: phi[:, i] = signed[:, i] * signed[:, i+1] * ... * signed[:, k-1]
    np.cumprod(out[:, k - 1 :: -1], axis=1, out=out[:, k - 1 :: -1])
    return out

"""The linear-additive-model challenge transform (parity feature map).

For a ``k``-stage MUX arbiter PUF with challenge bits
``c = (c_1, ..., c_k)`` in {0, 1}, the delay difference at the arbiter is
linear not in ``c`` but in the *transformed challenge vector* ``phi(c)``
[Ruhrmair et al.; refs 1-3 of the paper]:

    b_j     = 1 - 2*c_j                      (challenge bit in +/-1 form)
    phi_i   = prod_{j=i}^{k} b_j             for i = 1..k
    phi_k+1 = 1                              (bias / arbiter offset term)

so that ``delta(c) = w . phi(c)`` for a weight vector ``w`` of ``k + 1``
delay parameters.  Every learning component in the paper (the linear
regression of Sec. 4 and the MLP attack of Sec. 2.3) operates on
``phi(c)``, which is why this transform lives in the shared ``crp``
substrate rather than with either consumer.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.utils.validation import as_challenge_array

__all__ = [
    "to_signed",
    "from_signed",
    "parity_features",
    "n_features",
    "ParityFeatureCache",
]


def to_signed(challenges: np.ndarray) -> np.ndarray:
    """Map {0, 1} challenge bits to the {+1, -1} convention (0 -> +1)."""
    challenges = as_challenge_array(challenges)
    # int8 arithmetic cannot overflow here (values are 0/2 and +/-1).
    return 1 - 2 * challenges


def from_signed(signed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_signed`: map {+1, -1} back to {0, 1}."""
    signed = np.asarray(signed)
    if signed.size and not np.isin(signed, (-1, 1)).all():
        raise ValueError("signed challenge bits must be +/-1")
    return ((1 - signed) // 2).astype(np.int8)


def n_features(n_stages: int) -> int:
    """Feature dimensionality of the parity transform: ``k + 1``."""
    if n_stages <= 0:
        raise ValueError(f"n_stages must be positive, got {n_stages}")
    return n_stages + 1


def parity_features(
    challenges: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute the parity feature matrix ``phi`` for a batch of challenges.

    Parameters
    ----------
    challenges:
        Array of shape ``(n, k)`` with {0, 1} entries (a single 1-D
        challenge is also accepted).
    out:
        Optional preallocated float64 buffer of shape ``(n, k + 1)``.
        The chunked evaluation engine passes the same buffer for every
        chunk so the hot loop allocates nothing.

    Returns
    -------
    numpy.ndarray
        Float64 array of shape ``(n, k + 1)``; column ``i < k`` holds the
        suffix product ``prod_{j>=i} (1 - 2 c_j)`` and the final column is
        the constant 1.
    """
    challenges = as_challenge_array(challenges)
    n, k = challenges.shape
    if out is None:
        out = np.empty((n, k + 1), dtype=np.float64)
    elif out.shape != (n, k + 1) or out.dtype != np.float64:
        raise ValueError(
            f"out must be a float64 array of shape ({n}, {k + 1}), got "
            f"{out.dtype} {out.shape}"
        )
    # Signed bits are written straight into the feature buffer as float64
    # (single conversion; the old path went int8 -> int16 -> int8 -> float64).
    np.multiply(challenges, -2.0, out=out[:, :k])
    out[:, :k] += 1.0
    out[:, k] = 1.0
    # Suffix products: phi[:, i] = signed[:, i] * signed[:, i+1] * ... * signed[:, k-1]
    np.cumprod(out[:, k - 1 :: -1], axis=1, out=out[:, k - 1 :: -1])
    return out


class ParityFeatureCache:
    """Bounded content-addressed cache of parity feature matrices.

    Several consumers evaluate models over the *same* challenge batches:
    every constituent model of one chip scores the identical batch, and
    the server's identification path re-derives deterministic challenge
    streams across calls.  Keying on the challenge bytes lets all of
    them share one ``phi`` computation without any coordination.

    Entries are evicted least-recently-used once *max_entries* is
    exceeded, so the cache is safe to attach to a long-lived server.
    Cached matrices are returned with the writeable flag cleared;
    callers must treat them as read-only.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(challenges: np.ndarray) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(str(challenges.shape).encode("ascii"))
        digest.update(np.ascontiguousarray(challenges))
        return digest.digest()

    def features(self, challenges: np.ndarray) -> np.ndarray:
        """``parity_features(challenges)``, memoized on the batch content."""
        challenges = as_challenge_array(challenges)
        key = self._key(challenges)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        phi = parity_features(challenges)
        phi.setflags(write=False)
        self._entries[key] = phi
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return phi

    def clear(self) -> None:
        """Drop every cached matrix (counters are kept)."""
        self._entries.clear()

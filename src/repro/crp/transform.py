"""The linear-additive-model challenge transform (parity feature map).

For a ``k``-stage MUX arbiter PUF with challenge bits
``c = (c_1, ..., c_k)`` in {0, 1}, the delay difference at the arbiter is
linear not in ``c`` but in the *transformed challenge vector* ``phi(c)``
[Ruhrmair et al.; refs 1-3 of the paper]:

    b_j     = 1 - 2*c_j                      (challenge bit in +/-1 form)
    phi_i   = prod_{j=i}^{k} b_j             for i = 1..k
    phi_k+1 = 1                              (bias / arbiter offset term)

so that ``delta(c) = w . phi(c)`` for a weight vector ``w`` of ``k + 1``
delay parameters.  Every learning component in the paper (the linear
regression of Sec. 4 and the MLP attack of Sec. 2.3) operates on
``phi(c)``, which is why this transform lives in the shared ``crp``
substrate rather than with either consumer.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_challenge_array

__all__ = [
    "to_signed",
    "from_signed",
    "parity_features",
    "n_features",
]


def to_signed(challenges: np.ndarray) -> np.ndarray:
    """Map {0, 1} challenge bits to the {+1, -1} convention (0 -> +1)."""
    challenges = as_challenge_array(challenges)
    return (1 - 2 * challenges.astype(np.int16)).astype(np.int8)


def from_signed(signed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_signed`: map {+1, -1} back to {0, 1}."""
    signed = np.asarray(signed)
    if signed.size and not np.isin(signed, (-1, 1)).all():
        raise ValueError("signed challenge bits must be +/-1")
    return ((1 - signed) // 2).astype(np.int8)


def n_features(n_stages: int) -> int:
    """Feature dimensionality of the parity transform: ``k + 1``."""
    if n_stages <= 0:
        raise ValueError(f"n_stages must be positive, got {n_stages}")
    return n_stages + 1


def parity_features(challenges: np.ndarray) -> np.ndarray:
    """Compute the parity feature matrix ``phi`` for a batch of challenges.

    Parameters
    ----------
    challenges:
        Array of shape ``(n, k)`` with {0, 1} entries (a single 1-D
        challenge is also accepted).

    Returns
    -------
    numpy.ndarray
        Float64 array of shape ``(n, k + 1)``; column ``i < k`` holds the
        suffix product ``prod_{j>=i} (1 - 2 c_j)`` and the final column is
        the constant 1.
    """
    signed = to_signed(challenges).astype(np.float64)
    n, k = signed.shape
    phi = np.ones((n, k + 1), dtype=np.float64)
    # Suffix products: phi[:, i] = signed[:, i] * signed[:, i+1] * ... * signed[:, k-1]
    np.cumprod(signed[:, ::-1], axis=1, out=signed[:, ::-1])
    phi[:, :k] = signed
    return phi

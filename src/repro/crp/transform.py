"""The linear-additive-model challenge transform (parity feature map).

For a ``k``-stage MUX arbiter PUF with challenge bits
``c = (c_1, ..., c_k)`` in {0, 1}, the delay difference at the arbiter is
linear not in ``c`` but in the *transformed challenge vector* ``phi(c)``
[Ruhrmair et al.; refs 1-3 of the paper]:

    b_j     = 1 - 2*c_j                      (challenge bit in +/-1 form)
    phi_i   = prod_{j=i}^{k} b_j             for i = 1..k
    phi_k+1 = 1                              (bias / arbiter offset term)

so that ``delta(c) = w . phi(c)`` for a weight vector ``w`` of ``k + 1``
delay parameters.  Every learning component in the paper (the linear
regression of Sec. 4 and the MLP attack of Sec. 2.3) operates on
``phi(c)``, which is why this transform lives in the shared ``crp``
substrate rather than with either consumer.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.kernels import get_backend
from repro.utils.validation import as_challenge_array

__all__ = [
    "to_signed",
    "from_signed",
    "parity_features",
    "n_features",
    "ParityFeatureCache",
]


def to_signed(challenges: np.ndarray) -> np.ndarray:
    """Map {0, 1} challenge bits to the {+1, -1} convention (0 -> +1)."""
    challenges = as_challenge_array(challenges)
    # int8 arithmetic cannot overflow here (values are 0/2 and +/-1).
    return 1 - 2 * challenges


def from_signed(signed: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Inverse of :func:`to_signed`: map {+1, -1} back to {0, 1}.

    ``validate=False`` skips the +/-1 content scan for internal callers
    whose input was produced by trusted code (e.g. attack feature
    matrices derived from :func:`to_signed` output).
    """
    signed = np.asarray(signed)
    if validate and signed.size and not np.isin(signed, (-1, 1)).all():
        raise ValueError("signed challenge bits must be +/-1")
    return ((1 - signed) // 2).astype(np.int8)


def n_features(n_stages: int) -> int:
    """Feature dimensionality of the parity transform: ``k + 1``."""
    if n_stages <= 0:
        raise ValueError(f"n_stages must be positive, got {n_stages}")
    return n_stages + 1


def parity_features(
    challenges: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
    validate: bool = True,
) -> np.ndarray:
    """Compute the parity feature matrix ``phi`` for a batch of challenges.

    Parameters
    ----------
    challenges:
        Array of shape ``(n, k)`` with {0, 1} entries (a single 1-D
        challenge is also accepted).
    out:
        Optional preallocated float64 buffer of shape ``(n, k + 1)``.
        The chunked evaluation engine passes the same buffer for every
        chunk so the hot loop allocates nothing.
    validate:
        ``False`` skips the 0/1 content scan for internal callers whose
        batch was validated at a public boundary (see
        :func:`repro.utils.validation.as_challenge_array`).

    Returns
    -------
    numpy.ndarray
        Float64 array of shape ``(n, k + 1)``; column ``i < k`` holds the
        suffix product ``prod_{j>=i} (1 - 2 c_j)`` and the final column is
        the constant 1.

    The fill runs on the active kernel backend
    (:mod:`repro.kernels`); every backend produces bit-identical
    output here, because all products are over exact +/-1 values.
    """
    challenges = as_challenge_array(challenges, validate=validate)
    n, k = challenges.shape
    if out is None:
        out = np.empty((n, k + 1), dtype=np.float64)
    elif out.shape != (n, k + 1) or out.dtype != np.float64:
        raise ValueError(
            f"out must be a float64 array of shape ({n}, {k + 1}), got "
            f"{out.dtype} {out.shape}"
        )
    get_backend().parity_fill(np.ascontiguousarray(challenges), out)
    return out


class ParityFeatureCache:
    """Bounded content-addressed cache of parity feature matrices.

    Several consumers evaluate models over the *same* challenge batches:
    every constituent model of one chip scores the identical batch, and
    the server's identification path re-derives deterministic challenge
    streams across calls.  Keying on the challenge bytes lets all of
    them share one ``phi`` computation without any coordination.

    Entries are evicted least-recently-used once *max_entries* is
    exceeded, so the cache is safe to attach to a long-lived server.
    Cached matrices are returned with the writeable flag cleared;
    callers must treat them as read-only.

    The ``hits`` / ``misses`` / ``evictions`` counters (and the
    :meth:`stats` snapshot built from them) make the cache's behaviour
    observable from the serving layer -- e.g. whether a kernel-backend
    change shifted traffic on or off the transform.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(challenges: np.ndarray) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(str(challenges.shape).encode("ascii"))
        digest.update(np.ascontiguousarray(challenges))
        return digest.digest()

    def features(
        self, challenges: np.ndarray, *, validate: bool = True
    ) -> np.ndarray:
        """``parity_features(challenges)``, memoized on the batch content."""
        challenges = as_challenge_array(challenges, validate=validate)
        key = self._key(challenges)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        phi = parity_features(challenges, validate=False)
        phi.setflags(write=False)
        self._entries[key] = phi
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return phi

    def stats(self) -> dict:
        """Counter snapshot: hits, misses, evictions, size, hit rate."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }

    def clear(self) -> None:
        """Drop every cached matrix (counters are kept)."""
        self._entries.clear()

"""Plain-text interchange for CRP and soft-response datasets.

Research groups exchange PUF measurements as flat text tables (pypuf,
the modeling-attack artifact sets, chip-tester exports).  This module
reads and writes a simple CSV dialect so externally measured data can
flow straight into the library's attacks and enrollment code:

* CRP files: one row per challenge, ``k`` comma-separated challenge
  bits followed by the response bit;
* soft-response files: ``k`` challenge bits followed by the fractional
  soft response, with the trial count recorded on a ``# n_trials=``
  header line.

Both writers emit a commented header so files are self-describing; both
readers validate shape and value ranges loudly rather than guessing.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.crp.dataset import CrpDataset, SoftResponseDataset
from repro.utils.validation import check_positive_int


def _atomic_write_text(path: Path, text: str, faults=None) -> None:
    """Crash-safe text write (tmp + fsync + rename) with a fault hook."""
    if faults is not None:
        from repro.faults import Site

        faults.check(Site.DATASET_SAVE)
    from repro.engine.runtime import atomic_write_bytes

    atomic_write_bytes(path, text.encode("utf-8"))

__all__ = [
    "save_crps_csv",
    "load_crps_csv",
    "save_soft_responses_csv",
    "load_soft_responses_csv",
]

_PathLike = Union[str, Path]


def save_crps_csv(dataset: CrpDataset, path: _PathLike, *, faults=None) -> None:
    """Write a hard-response dataset as ``c_1,...,c_k,response`` rows.

    The write is atomic (tmp + fsync + rename): a crash mid-export
    never leaves a half-written table behind.
    """
    path = Path(path)
    k = dataset.n_stages
    header = (
        f"# repro CRP export: n_stages={k} n_rows={len(dataset)}\n"
        f"# columns: c_0..c_{k - 1}, response\n"
    )
    table = np.column_stack([dataset.challenges, dataset.responses])
    buffer = io.StringIO()
    buffer.write(header)
    np.savetxt(buffer, table, fmt="%d", delimiter=",")
    _atomic_write_text(path, buffer.getvalue(), faults=faults)


def load_crps_csv(path: _PathLike, *, faults=None) -> CrpDataset:
    """Read a file written by :func:`save_crps_csv` (or compatible).

    Any comment lines (``#``) are skipped; every data row must hold the
    same number of 0/1 integers, the last being the response.
    """
    path = Path(path)
    if faults is not None:
        from repro.faults import Site

        faults.check(Site.DATASET_LOAD)
    table = np.loadtxt(path, delimiter=",", comments="#", dtype=np.int64, ndmin=2)
    if table.shape[1] < 2:
        raise ValueError(
            f"{path} rows must hold at least one challenge bit and a response"
        )
    return CrpDataset(table[:, :-1].astype(np.int8), table[:, -1].astype(np.int8))


def save_soft_responses_csv(
    dataset: SoftResponseDataset, path: _PathLike, *, faults=None
) -> None:
    """Write a soft-response dataset as ``c_1,...,c_k,soft`` rows.

    The counter depth is stored on a header line and restored by
    :func:`load_soft_responses_csv`.  The write is atomic.
    """
    path = Path(path)
    k = dataset.n_stages
    buffer = io.StringIO()
    buffer.write(
        f"# repro soft-response export: n_stages={k} n_rows={len(dataset)}\n"
        f"# n_trials={dataset.n_trials}\n"
        f"# columns: c_0..c_{k - 1}, soft_response\n"
    )
    for challenge, soft in zip(dataset.challenges, dataset.soft_responses):
        bits = ",".join(str(int(bit)) for bit in challenge)
        buffer.write(f"{bits},{float(soft)!r}\n")
    _atomic_write_text(path, buffer.getvalue(), faults=faults)


def load_soft_responses_csv(
    path: _PathLike,
    n_trials: int | None = None,
    *,
    faults=None,
) -> SoftResponseDataset:
    """Read a file written by :func:`save_soft_responses_csv`.

    Parameters
    ----------
    path:
        Input file.
    n_trials:
        Counter depth; if omitted it must appear on a ``# n_trials=``
        header line.
    """
    path = Path(path)
    if faults is not None:
        from repro.faults import Site

        faults.check(Site.DATASET_LOAD)
    header_trials: int | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            if not line.startswith("#"):
                break
            stripped = line[1:].strip()
            if stripped.startswith("n_trials="):
                header_trials = int(stripped.split("=", 1)[1])
    if n_trials is None:
        if header_trials is None:
            raise ValueError(
                f"{path} has no '# n_trials=' header; pass n_trials explicitly"
            )
        n_trials = header_trials
    check_positive_int(n_trials, "n_trials")
    table = np.loadtxt(path, delimiter=",", comments="#", ndmin=2)
    if table.shape[1] < 2:
        raise ValueError(
            f"{path} rows must hold at least one challenge bit and a soft response"
        )
    challenges = table[:, :-1]
    if not np.isin(challenges, (0.0, 1.0)).all():
        raise ValueError(f"{path} challenge columns must be 0/1")
    return SoftResponseDataset(
        challenges.astype(np.int8), table[:, -1], n_trials
    )

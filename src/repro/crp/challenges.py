"""Challenge generation for arbiter PUFs.

A *challenge* is a vector of ``k`` bits, one per MUX stage, selecting the
straight or crossed path through each stage.  The paper's test chips have
``k = 32`` stages; its CRP-space argument in the conclusion uses
``k = 64``.  All generators below produce challenges as ``int8`` arrays
of shape ``(n, k)`` with entries in {0, 1}.

The module offers:

* uniform random sampling (with or without replacement),
* a deterministic seeded *stream* (for protocols that must re-derive the
  same challenge sequence on server and device),
* exhaustive enumeration for small ``k`` (used by tests),
* integer encode/decode helpers so challenges can be stored compactly.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import as_challenge_array, check_positive_int

__all__ = [
    "random_challenges",
    "unique_random_challenges",
    "all_challenges",
    "ChallengeStream",
    "encode_challenges",
    "decode_challenges",
]


def random_challenges(
    n: int,
    n_stages: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample *n* uniform random challenges of *n_stages* bits each.

    Sampling is with replacement: for the 32- and 64-stage spaces used in
    the paper the collision probability over 10^6 draws is negligible
    (birthday bound < 1.2e-4 for k = 32).
    """
    n = check_positive_int(n, "n")
    n_stages = check_positive_int(n_stages, "n_stages")
    rng = as_generator(seed)
    return rng.integers(0, 2, size=(n, n_stages), dtype=np.int8)


def unique_random_challenges(
    n: int,
    n_stages: int,
    seed: SeedLike = None,
    *,
    max_attempts: int = 16,
) -> np.ndarray:
    """Sample *n* distinct random challenges.

    Rejection-samples batches until *n* distinct rows are collected.
    Raises :class:`ValueError` if the space is too small (``n > 2**k``).
    """
    n = check_positive_int(n, "n")
    n_stages = check_positive_int(n_stages, "n_stages")
    if n_stages < 63 and n > 2**n_stages:
        raise ValueError(
            f"cannot draw {n} distinct challenges from a space of 2^{n_stages}"
        )
    rng = as_generator(seed)
    seen: dict[bytes, int] = {}
    rows = np.empty((n, n_stages), dtype=np.int8)
    filled = 0
    for _ in range(max_attempts):
        batch = rng.integers(0, 2, size=(max(n - filled, 1) * 2, n_stages), dtype=np.int8)
        for row in batch:
            key = row.tobytes()
            if key in seen:
                continue
            seen[key] = filled
            rows[filled] = row
            filled += 1
            if filled == n:
                return rows
    raise RuntimeError(
        f"failed to collect {n} distinct challenges in {max_attempts} batches"
    )


def all_challenges(n_stages: int) -> np.ndarray:
    """Enumerate every challenge of *n_stages* bits (for small spaces).

    Row ``i`` holds the binary expansion of ``i`` with the most
    significant bit first.  Refuses spaces above 2^20 entries.
    """
    n_stages = check_positive_int(n_stages, "n_stages")
    if n_stages > 20:
        raise ValueError(
            f"refusing to enumerate 2^{n_stages} challenges; use random sampling"
        )
    count = 1 << n_stages
    indices = np.arange(count, dtype=np.uint64)
    shifts = np.arange(n_stages - 1, -1, -1, dtype=np.uint64)
    return ((indices[:, None] >> shifts[None, :]) & 1).astype(np.int8)


def encode_challenges(challenges: np.ndarray) -> np.ndarray:
    """Pack challenges (MSB first) into unsigned 64-bit integers.

    Only defined for ``n_stages <= 64``.  Inverse of
    :func:`decode_challenges`.
    """
    challenges = as_challenge_array(challenges)
    k = challenges.shape[1]
    if k > 64:
        raise ValueError(f"cannot encode {k}-stage challenges into uint64")
    shifts = np.arange(k - 1, -1, -1, dtype=np.uint64)
    return (challenges.astype(np.uint64) << shifts[None, :]).sum(axis=1, dtype=np.uint64)


def decode_challenges(codes: np.ndarray, n_stages: int) -> np.ndarray:
    """Unpack uint64 codes back into challenge bit arrays (MSB first)."""
    n_stages = check_positive_int(n_stages, "n_stages")
    if n_stages > 64:
        raise ValueError(f"cannot decode {n_stages}-stage challenges from uint64")
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.ndim != 1:
        raise ValueError(f"codes must be 1-D, got ndim={codes.ndim}")
    shifts = np.arange(n_stages - 1, -1, -1, dtype=np.uint64)
    return ((codes[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.int8)


class ChallengeStream:
    """Deterministic, restartable stream of random challenges.

    Both sides of an authentication protocol can construct the same
    stream from a shared seed and consume identical challenge batches.

    Parameters
    ----------
    n_stages:
        Challenge width in bits.
    seed:
        Root seed; equal seeds yield equal streams.
    """

    def __init__(self, n_stages: int, seed: SeedLike = None) -> None:
        self.n_stages = check_positive_int(n_stages, "n_stages")
        self._seed = seed
        self._rng = as_generator(seed)
        self._drawn = 0

    @property
    def drawn(self) -> int:
        """Number of challenges drawn from the stream so far."""
        return self._drawn

    def take(self, n: int) -> np.ndarray:
        """Draw the next *n* challenges."""
        n = check_positive_int(n, "n")
        batch = self._rng.integers(0, 2, size=(n, self.n_stages), dtype=np.int8)
        self._drawn += n
        return batch

    def __iter__(self) -> Iterator[np.ndarray]:
        while True:
            yield self.take(1)[0]

"""Containers for challenge-response-pair (CRP) datasets.

Two dataset flavours mirror the two measurement modes of the paper:

* :class:`CrpDataset` holds hard (1-bit) responses, as seen by a server
  or an attacker during authentication.
* :class:`SoftResponseDataset` holds *soft responses*: the fraction of
  ``1`` outcomes over ``n_trials`` repeated evaluations of the same
  challenge (the paper's on-chip-counter measurement with
  ``n_trials = 100_000``).

Both support train/test splitting, stability filtering with the paper's
"first/last histogram bin" criterion, and ``.npz`` round-trips.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import (
    as_challenge_array,
    check_positive_int,
    is_binary_array,
)

__all__ = [
    "CorruptDatasetError",
    "CrpDataset",
    "SoftResponseDataset",
    "is_stable_soft",
    "train_test_split_indices",
]


class CorruptDatasetError(RuntimeError):
    """A dataset file is truncated, damaged or fails its checksum.

    Raised instead of the raw NumPy/zipfile internals so callers can
    distinguish "this file is damaged -- re-measure or restore it" from
    programming errors.
    """


def _payload_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the named arrays' dtype, shape and raw bytes."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _atomic_savez(path: Path, arrays: Dict[str, np.ndarray], faults=None) -> None:
    """Crash-safe ``.npz`` write: tmp + fsync + rename, checksum embedded.

    The checksum covers every payload array and is verified by
    :func:`_checked_load`, so a torn write or bit rot surfaces as
    :class:`CorruptDatasetError` instead of silently wrong science.
    """
    if faults is not None:
        from repro.faults import Site

        faults.check(Site.DATASET_SAVE)
    if path.suffix != ".npz":
        # Match np.savez's historical name munging so legacy call
        # sites keep producing the same files.
        path = path.with_name(path.name + ".npz")
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer, checksum=np.str_(_payload_checksum(arrays)), **arrays
    )
    from repro.engine.runtime import atomic_write_bytes

    atomic_write_bytes(path, buffer.getvalue())


def _checked_load(path: Path, required: Tuple[str, ...], faults=None) -> Dict[str, np.ndarray]:
    """Load an ``.npz``, verifying structure and (if present) checksum.

    Files written before checksums existed load fine -- the checksum is
    only verified when the field is present.
    """
    if faults is not None:
        from repro.faults import Site

        faults.check(Site.DATASET_LOAD)
    try:
        with np.load(Path(path), allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except FileNotFoundError:
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        OSError,
        ValueError,
        EOFError,
        KeyError,
    ) as exc:
        raise CorruptDatasetError(
            f"dataset file {path} is unreadable or truncated: {exc}"
        ) from exc
    missing = [name for name in required if name not in arrays]
    if missing:
        raise CorruptDatasetError(
            f"dataset file {path} is missing required arrays {missing} "
            f"(found {sorted(arrays)})"
        )
    stored = arrays.pop("checksum", None)
    if stored is not None:
        payload = {name: arrays[name] for name in required}
        actual = _payload_checksum(payload)
        if str(stored) != actual:
            raise CorruptDatasetError(
                f"dataset file {path} failed its SHA-256 checksum "
                "(stored payload does not match the recorded digest)"
            )
    return arrays


def is_stable_soft(
    soft_responses: np.ndarray,
    n_trials: int,
) -> np.ndarray:
    """Boolean mask of "100 % stable" soft responses.

    The paper calls a challenge stable when the counter over *n_trials*
    repetitions reads exactly 0 or exactly *n_trials* — i.e. the soft
    response lands in the first (0.00) or last (1.00) histogram bin with
    no flips at all.
    """
    n_trials = check_positive_int(n_trials, "n_trials")
    soft = np.asarray(soft_responses, dtype=np.float64)
    counts = np.rint(soft * n_trials)
    return (counts == 0) | (counts == n_trials)


def train_test_split_indices(
    n: int,
    train_fraction: float,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random index split of ``range(n)`` into (train, test).

    The paper's attack experiments use a 90 % / 10 % split of the 1 M
    measured challenges before stability filtering.
    """
    n = check_positive_int(n, "n")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = as_generator(seed)
    order = rng.permutation(n)
    n_train = int(round(n * train_fraction))
    n_train = min(max(n_train, 1), n - 1)
    return np.sort(order[:n_train]), np.sort(order[n_train:])


@dataclasses.dataclass(frozen=True)
class CrpDataset:
    """An immutable set of challenges with hard 1-bit responses.

    Attributes
    ----------
    challenges:
        ``(n, k)`` int8 array of {0, 1} challenge bits.
    responses:
        ``(n,)`` int8 array of {0, 1} responses.
    """

    challenges: np.ndarray
    responses: np.ndarray

    def __post_init__(self) -> None:
        challenges = as_challenge_array(self.challenges)
        responses = np.asarray(self.responses)
        if responses.ndim != 1:
            raise ValueError(f"responses must be 1-D, got ndim={responses.ndim}")
        if len(responses) != len(challenges):
            raise ValueError(
                f"{len(challenges)} challenges but {len(responses)} responses"
            )
        if responses.size and not is_binary_array(responses):
            raise ValueError("responses must contain only 0/1 bits")
        object.__setattr__(self, "challenges", challenges)
        object.__setattr__(self, "responses", responses.astype(np.int8, copy=False))

    def __len__(self) -> int:
        return len(self.responses)

    @property
    def n_stages(self) -> int:
        """Challenge width in bits."""
        return self.challenges.shape[1]

    def subset(self, indices: np.ndarray) -> "CrpDataset":
        """Row-select a new dataset (indices or boolean mask)."""
        return CrpDataset(self.challenges[indices], self.responses[indices])

    def split(
        self,
        train_fraction: float = 0.9,
        seed: SeedLike = None,
    ) -> Tuple["CrpDataset", "CrpDataset"]:
        """Random (train, test) split."""
        tr, te = train_test_split_indices(len(self), train_fraction, seed)
        return self.subset(tr), self.subset(te)

    def save(self, path: Union[str, Path], *, faults=None) -> None:
        """Serialise to a compressed ``.npz`` file.

        The write is atomic (tmp + fsync + rename) and embeds a payload
        checksum, so a crash mid-save never leaves a torn file and any
        later damage is caught by :meth:`load`.
        """
        _atomic_savez(
            Path(path),
            {"challenges": self.challenges, "responses": self.responses},
            faults=faults,
        )

    @classmethod
    def load(cls, path: Union[str, Path], *, faults=None) -> "CrpDataset":
        """Load a dataset previously written by :meth:`save`.

        Raises :class:`CorruptDatasetError` on truncated, damaged or
        checksum-failing files (legacy checksum-free files still load).
        """
        data = _checked_load(Path(path), ("challenges", "responses"), faults=faults)
        return cls(data["challenges"], data["responses"])


@dataclasses.dataclass(frozen=True)
class SoftResponseDataset:
    """Challenges with fractional soft responses from repeated evaluation.

    Attributes
    ----------
    challenges:
        ``(n, k)`` int8 array of {0, 1} challenge bits.
    soft_responses:
        ``(n,)`` float64 array in [0, 1]: fraction of ``1`` outcomes.
    n_trials:
        Number of repeated evaluations behind each soft response
        (100 000 in the paper).
    """

    challenges: np.ndarray
    soft_responses: np.ndarray
    n_trials: int

    def __post_init__(self) -> None:
        challenges = as_challenge_array(self.challenges)
        soft = np.asarray(self.soft_responses, dtype=np.float64)
        if soft.ndim != 1:
            raise ValueError(f"soft_responses must be 1-D, got ndim={soft.ndim}")
        if len(soft) != len(challenges):
            raise ValueError(
                f"{len(challenges)} challenges but {len(soft)} soft responses"
            )
        if soft.size and (soft.min() < 0.0 or soft.max() > 1.0):
            raise ValueError("soft responses must lie in [0, 1]")
        n_trials = check_positive_int(self.n_trials, "n_trials")
        object.__setattr__(self, "challenges", challenges)
        object.__setattr__(self, "soft_responses", soft)
        object.__setattr__(self, "n_trials", n_trials)

    def __len__(self) -> int:
        return len(self.soft_responses)

    @property
    def n_stages(self) -> int:
        """Challenge width in bits."""
        return self.challenges.shape[1]

    @property
    def stable_mask(self) -> np.ndarray:
        """Boolean mask of 100 %-stable rows (soft response exactly 0 or 1)."""
        return is_stable_soft(self.soft_responses, self.n_trials)

    @property
    def stable_fraction(self) -> float:
        """Fraction of rows that are 100 % stable."""
        if len(self) == 0:
            return float("nan")
        return float(self.stable_mask.mean())

    def hard_responses(self) -> np.ndarray:
        """Round soft responses to 1-bit responses (ties broken toward 1)."""
        return (self.soft_responses >= 0.5).astype(np.int8)

    def to_crp_dataset(self) -> CrpDataset:
        """Collapse to hard responses (majority over the trials)."""
        return CrpDataset(self.challenges, self.hard_responses())

    def subset(self, indices: np.ndarray) -> "SoftResponseDataset":
        """Row-select a new dataset (indices or boolean mask)."""
        return SoftResponseDataset(
            self.challenges[indices], self.soft_responses[indices], self.n_trials
        )

    def stable_subset(self) -> "SoftResponseDataset":
        """Only the 100 %-stable rows."""
        return self.subset(self.stable_mask)

    def split(
        self,
        train_fraction: float = 0.9,
        seed: SeedLike = None,
    ) -> Tuple["SoftResponseDataset", "SoftResponseDataset"]:
        """Random (train, test) split."""
        tr, te = train_test_split_indices(len(self), train_fraction, seed)
        return self.subset(tr), self.subset(te)

    def save(self, path: Union[str, Path], *, faults=None) -> None:
        """Serialise to a compressed ``.npz`` file.

        Atomic and checksummed; see :meth:`CrpDataset.save`.
        """
        _atomic_savez(
            Path(path),
            {
                "challenges": self.challenges,
                "soft_responses": self.soft_responses,
                "n_trials": np.int64(self.n_trials),
            },
            faults=faults,
        )

    @classmethod
    def load(cls, path: Union[str, Path], *, faults=None) -> "SoftResponseDataset":
        """Load a dataset previously written by :meth:`save`.

        Raises :class:`CorruptDatasetError` on truncated, damaged or
        checksum-failing files (legacy checksum-free files still load).
        """
        data = _checked_load(
            Path(path), ("challenges", "soft_responses", "n_trials"), faults=faults
        )
        return cls(
            data["challenges"],
            data["soft_responses"],
            int(data["n_trials"]),
        )

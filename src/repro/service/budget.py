"""Per-chip challenge-budget accounting for the serving path.

The zero-HD protocol's security rests on never asking the same question
twice: every authentication session, *including sessions burnt by device
read failures*, consumes selected challenges that can never be reused.
The pool of provisioned never-used challenges is therefore an
irreplaceable resource, and the service treats it like one: every issued
challenge is charged against a per-chip budget, a low-water mark warns
the operator before the pool runs dry, and once it is spent the service
**refuses** with a typed :class:`PoolExhaustedError` rather than ever
replaying a transcript.
"""

from __future__ import annotations

import dataclasses

from repro.utils.validation import check_positive_int, check_probability

__all__ = ["ChallengeBudget", "PoolExhaustedError"]


class PoolExhaustedError(RuntimeError):
    """The chip's never-used challenge pool cannot cover another session.

    Raised by the service *instead of replaying challenges*; recovery
    requires provisioning (re-enrollment or a larger configured pool),
    never a transcript repeat.
    """

    def __init__(self, chip_id: str, requested: int, remaining: int) -> None:
        super().__init__(
            f"challenge pool of chip {chip_id!r} exhausted: "
            f"{requested} challenges requested, {remaining} remaining; "
            "refusing to replay used challenges"
        )
        self.chip_id = chip_id
        self.requested = requested
        self.remaining = remaining


@dataclasses.dataclass
class ChallengeBudget:
    """Accounting for one chip's provisioned never-used challenge pool.

    Attributes
    ----------
    chip_id:
        Identity the pool belongs to.
    capacity:
        Provisioned pool size (challenges the operator is willing to
        spend over the deployment's lifetime).
    low_water_fraction:
        Remaining fraction below which :attr:`low_water` turns on.
    spent:
        Challenges issued so far (monotone).
    released:
        Unspent capacity reclaimed when the chip left the fleet
        (revocation).  A released pool can never reserve again.
    closed:
        Latched by the first :meth:`release`; every later release is a
        guaranteed no-op regardless of how the counters move in
        between, so replayed revocations cannot inflate the ledger.
    """

    chip_id: str
    capacity: int
    low_water_fraction: float = 0.10
    spent: int = 0
    released: int = 0
    closed: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.capacity, "capacity")
        check_probability(self.low_water_fraction, "low_water_fraction")
        if self.spent < 0:
            raise ValueError(f"spent must be >= 0, got {self.spent}")
        if self.released < 0:
            raise ValueError(f"released must be >= 0, got {self.released}")

    @property
    def remaining(self) -> int:
        """Challenges still available (zero once released)."""
        return self.capacity - self.spent - self.released

    @property
    def fraction_remaining(self) -> float:
        """Remaining pool as a fraction of capacity."""
        return self.remaining / self.capacity

    @property
    def low_water(self) -> bool:
        """Whether the pool has crossed its low-water mark."""
        return self.fraction_remaining <= self.low_water_fraction

    def can_reserve(self, n_challenges: int) -> bool:
        """Whether *n_challenges* fit in the remaining pool."""
        return n_challenges <= self.remaining

    def reserve(self, n_challenges: int) -> bool:
        """Charge *n_challenges* to the pool.

        Returns ``True`` when the charge newly crossed the low-water
        mark (the caller emits exactly one warning per crossing).

        Raises
        ------
        PoolExhaustedError
            When the pool cannot cover the charge; the pool is left
            unchanged, so a refused request costs nothing.
        """
        check_positive_int(n_challenges, "n_challenges")
        if not self.can_reserve(n_challenges):
            raise PoolExhaustedError(self.chip_id, n_challenges, self.remaining)
        was_low = self.low_water
        self.spent += n_challenges
        return self.low_water and not was_low

    def release(self) -> int:
        """Reclaim the whole unspent pool (the chip left the fleet).

        Called on revocation: the remaining never-used challenges will
        never be issued under this identity, so their provisioning cost
        is returned to the operator's ledger instead of leaking.  The
        reclaimed count is recorded in :attr:`released` and surfaced in
        the service's budget stats.  Idempotent by construction: the
        first call latches :attr:`closed`, so a replayed revocation
        (retry loops, at-least-once event delivery) reclaims exactly
        zero instead of compounding -- previously this relied on the
        ``remaining`` arithmetic alone, which a future refund path
        could silently break.  A released pool can never reserve again.
        """
        if self.closed:
            return 0
        self.closed = True
        reclaimed = self.remaining
        self.released += reclaimed
        return reclaimed

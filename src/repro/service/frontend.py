"""The micro-batching front end: coalesce concurrent traffic into packed passes.

:class:`AuthenticationService` serves one request per call; its batched
entry points (:meth:`~AuthenticationService.authenticate_many` /
:meth:`~AuthenticationService.identify_many`) amortize scoring across a
batch -- but only if somebody *builds* the batch.  This module is that
somebody: :class:`BatchingFrontend` accepts concurrent submissions from
many client threads (and asyncio coroutines), parks them in a bounded
queue, and a single batching loop drains the queue into packed passes.
Under load, batches form naturally: while one pass executes, the next
requests pile up behind it.

Correctness contract -- batching is **invisible** in the results:

* every decision is bit-identical to the same requests served as
  sequential per-request calls in submission order.  The one hazard is
  two authentications of the *same* chip sharing a pass: admission of
  the later request would read breaker/limiter/drift state *before*
  scoring of the earlier one updates it.  The drain loop therefore
  splits each drained batch into runs and never lets a chip appear
  twice in one authentication run (cross-chip state is independent, so
  distinct chips coalesce freely);
* audit events, request numbers and challenge accounting come out
  exactly as the sequential order would produce them;
* a failed request poisons nobody: authentication exceptions (e.g. the
  typed :class:`~repro.service.budget.PoolExhaustedError`) are captured
  per slot by :meth:`AuthenticationService.authenticate_batch`, and a
  device that dies mid-identification is zero-filled out of the packed
  pass and handed its exception alone (the zero rows score far below
  any sane threshold and cannot perturb its batchmates' rows);
* a full queue refuses the submission with the same typed
  :class:`~repro.service.fleet.OverloadError` the shard fleet uses, and
  records an ``OVERLOAD_SHED`` audit event through the service: zero
  challenges issued, zero per-chip state touched, batchmates untouched;
* per-request deadlines survive queueing: an explicit deadline is
  charged for the time the request spent waiting (measured on the
  service's own clock), so a request that expires in the queue is
  denied ``DEADLINE_EXCEEDED`` at admission exactly like a sequential
  call that ran out of time.

With a shard fleet attached to the service, a drained identification
run flows through :meth:`ShardDispatcher.submit` /
:meth:`~ShardDispatcher.flush`, so one front-end flush costs one shard
round-trip for the whole run -- per-shard passes coalesce *across*
client requests.

The batching policy (:class:`FrontendConfig`):

* ``max_batch`` caps how many requests share one drain;
* ``adaptive_flush=True`` (default) never dwells -- the loop serves
  whatever is queued the moment it is free, and relies on execution
  backpressure to build batches (lowest idle latency, full batches
  under load);
* ``adaptive_flush=False`` dwells up to ``max_wait_us`` after the
  first request arrives, waiting for stragglers to fill the batch --
  a throughput-biased policy for bursty open-loop traffic.

Thread-safety: the loop thread is the *only* thread that touches the
wrapped service (submitters just enqueue), so the single-threaded
:class:`AuthenticationService` needs no internal locking.  The one
exception is the shed audit event, recorded straight from the
submitter thread -- a refusal that queued behind the in-flight batch
would not be load shedding -- and kept safe by the service's own
atomic audit append (``AuthenticationService._audit_lock``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.authentication import Responder
from repro.core.server import IdentificationResult
from repro.service.fleet.dispatcher import OverloadError
from repro.service.service import AuthenticationService, ServiceResult
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.validation import check_positive_int

__all__ = ["BatchingFrontend", "FrontendConfig"]


@dataclasses.dataclass(frozen=True)
class FrontendConfig:
    """Batching policy of the coalescing front end.

    Attributes
    ----------
    max_batch:
        Most requests one drained pass may serve.
    max_wait_us:
        With ``adaptive_flush=False``: how long (microseconds, host
        clock) the loop dwells after the first queued request, waiting
        for stragglers to fill the batch.  Ignored when adaptive.
    max_pending:
        Bound of the submission queue; a submission beyond it is shed
        with a typed :class:`~repro.service.fleet.OverloadError`.
    adaptive_flush:
        ``True`` -- flush as soon as the loop is free (batches form
        from execution backpressure); ``False`` -- dwell up to
        ``max_wait_us`` for a fuller batch.
    min_match_fraction:
        Default identification threshold for :meth:`identify`
        submissions that do not pass their own.
    """

    max_batch: int = 64
    max_wait_us: float = 200.0
    max_pending: int = 256
    adaptive_flush: bool = True
    min_match_fraction: float = 0.95

    def __post_init__(self) -> None:
        check_positive_int(self.max_batch, "max_batch")
        check_positive_int(self.max_pending, "max_pending")
        if self.max_wait_us < 0:
            raise ValueError(
                f"max_wait_us must be >= 0, got {self.max_wait_us}"
            )
        if not 0 < self.min_match_fraction <= 1:
            raise ValueError(
                "min_match_fraction must be in (0, 1], got "
                f"{self.min_match_fraction}"
            )


@dataclasses.dataclass
class _QueuedRequest:
    """One parked submission, demuxed back through its future."""

    kind: str  # "auth" | "identify"
    responder: Responder
    future: "concurrent.futures.Future"
    claimed_id: Optional[str] = None
    condition: OperatingCondition = NOMINAL_CONDITION
    deadline: Optional[float] = None
    min_match_fraction: float = 0.95
    return_scores: bool = False
    enqueued_at: float = 0.0  # service clock, for deadline accounting

    @property
    def chip_key(self) -> object:
        """Hazard key: requests sharing it never share an auth run."""
        claimed = self.claimed_id
        if claimed is None:
            claimed = getattr(self.responder, "chip_id", None)
        # An unresolvable identity fails admission without touching any
        # per-chip state, so it can share a run with anything.
        return claimed if claimed is not None else self

    def run_key(self) -> Tuple:
        """Requests with equal keys may share one packed pass."""
        if self.kind == "auth":
            return ("auth",)
        return ("identify", self.min_match_fraction, self.return_scores)


class _GuardedResponder:
    """Shield a packed identification pass from one device's failure.

    The batched plane reads every device up front and scores the stack
    in one pass; an exception mid-stack would abort batchmates that
    already answered (and re-reading them in a fallback would advance
    their noise streams -- observably different from sequential
    serving).  The guard reads each device exactly once: a raising
    device contributes a zero row (scored, but an agreement of ~50%
    can never cross an identification threshold, so batchmates'
    independent rows are untouched) and its exception is delivered to
    its own future during demux.
    """

    def __init__(self, responder: Responder) -> None:
        self._responder = responder
        self.error: Optional[BaseException] = None

    def xor_response(self, challenges, condition=None) -> np.ndarray:
        if self.error is None:
            try:
                return np.asarray(
                    self._responder.xor_response(challenges, condition)
                )
            except Exception as exc:
                self.error = exc
        return np.zeros(len(challenges), dtype=np.int8)


class BatchingFrontend:
    """Thread-safe / asyncio front door that micro-batches a service.

    Parameters
    ----------
    service:
        The wrapped :class:`AuthenticationService`.  The front end
        becomes its sole caller: route *all* concurrent traffic here
        (direct service calls from other threads would race the loop).
    config:
        The :class:`FrontendConfig` batching policy.

    Examples
    --------
    Threads::

        frontend = BatchingFrontend(service)
        result = frontend.authenticate(chip)          # blocks
        future = frontend.submit_authenticate(chip)   # does not

    asyncio::

        result = await frontend.authenticate_async(chip)

    Close with :meth:`close` (or use as a context manager); queued
    requests are served before the loop exits.
    """

    def __init__(
        self,
        service: AuthenticationService,
        config: Optional[FrontendConfig] = None,
    ) -> None:
        self._service = service
        self.config = config if config is not None else FrontendConfig()
        self._queue: Deque[_QueuedRequest] = deque()
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)
        self._service_lock = threading.Lock()
        self._closed = False
        self._submitted = 0
        self._shed = 0
        self._batches = 0
        self._runs = 0
        self._largest_batch = 0
        self._loop_thread = threading.Thread(
            target=self._loop, name="repro-frontend", daemon=True
        )
        self._loop_thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "BatchingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting, serve everything queued, stop the loop."""
        with self._not_empty:
            if self._closed:
                return
            self._closed = True
            self._not_empty.notify_all()
        self._loop_thread.join()

    @property
    def service(self) -> AuthenticationService:
        """The wrapped service."""
        return self._service

    @property
    def stats(self) -> dict:
        """Coalescing counters (submitted / shed / batches / runs)."""
        with self._mutex:
            submitted, shed = self._submitted, self._shed
            batches, runs = self._batches, self._runs
            largest = self._largest_batch
        served = submitted - shed
        return {
            "submitted": submitted,
            "shed": shed,
            "batches": batches,
            "runs": runs,
            "largest_batch": largest,
            "mean_batch": served / batches if batches else 0.0,
        }

    # ------------------------------------------------------------------
    # Submission facades
    # ------------------------------------------------------------------
    def submit_authenticate(
        self,
        responder: Responder,
        *,
        claimed_id: Optional[str] = None,
        condition: OperatingCondition = NOMINAL_CONDITION,
        deadline: Optional[float] = None,
    ) -> "concurrent.futures.Future[ServiceResult]":
        """Enqueue one authentication; resolve via the returned future.

        The future carries the request's :class:`ServiceResult`, or the
        exception the same sequential :meth:`~AuthenticationService.authenticate`
        call would have raised.  Raises :class:`OverloadError`
        immediately (shedding the request, audibly) when the queue is
        at its bound.
        """
        return self._enqueue(
            _QueuedRequest(
                kind="auth", responder=responder, claimed_id=claimed_id,
                condition=condition, deadline=deadline,
                future=concurrent.futures.Future(),
            )
        )

    def authenticate(self, responder: Responder, **kwargs) -> ServiceResult:
        """Blocking facade over :meth:`submit_authenticate`."""
        return self.submit_authenticate(responder, **kwargs).result()

    async def authenticate_async(
        self, responder: Responder, **kwargs
    ) -> ServiceResult:
        """Asyncio facade: awaitable :meth:`submit_authenticate`."""
        return await asyncio.wrap_future(
            self.submit_authenticate(responder, **kwargs)
        )

    def submit_identify(
        self,
        responder: Responder,
        *,
        condition: OperatingCondition = NOMINAL_CONDITION,
        min_match_fraction: Optional[float] = None,
        return_scores: bool = False,
    ) -> "concurrent.futures.Future[IdentificationResult]":
        """Enqueue one 1:N identification; resolve via the future.

        Identifications sharing a drain (and the same threshold /
        score-reporting options) are served by one packed codebook
        pass -- one shard round-trip when a fleet is attached.
        """
        return self._enqueue(
            _QueuedRequest(
                kind="identify", responder=responder, condition=condition,
                min_match_fraction=(
                    self.config.min_match_fraction
                    if min_match_fraction is None else min_match_fraction
                ),
                return_scores=return_scores,
                future=concurrent.futures.Future(),
            )
        )

    def identify(self, responder: Responder, **kwargs) -> IdentificationResult:
        """Blocking facade over :meth:`submit_identify`."""
        return self.submit_identify(responder, **kwargs).result()

    async def identify_async(
        self, responder: Responder, **kwargs
    ) -> IdentificationResult:
        """Asyncio facade: awaitable :meth:`submit_identify`."""
        return await asyncio.wrap_future(
            self.submit_identify(responder, **kwargs)
        )

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def _enqueue(self, item: _QueuedRequest) -> "concurrent.futures.Future":
        with self._not_empty:
            if self._closed:
                raise RuntimeError("frontend is closed")
            if len(self._queue) >= self.config.max_pending:
                self._shed += 1
                self._submitted += 1
                pending = len(self._queue)
                shed_id = item.claimed_id or getattr(
                    item.responder, "chip_id", None
                )
            else:
                item.enqueued_at = self._service._clock()
                self._queue.append(item)
                self._submitted += 1
                self._not_empty.notify()
                return item.future
        # Shed outside the queue lock -- and WITHOUT the service lock:
        # a refusal that waits behind the in-flight batch is not load
        # shedding.  The service's audit append is internally atomic
        # (AuthenticationService._audit_lock), so recording from the
        # submitter thread cannot corrupt sequence numbers.
        detail = (
            f"front-end queue full at {pending} pending "
            f"(bound {self.config.max_pending}); {item.kind} refused"
        )
        self._service.record_shed(shed_id, detail)
        raise OverloadError(pending, self.config.max_pending)

    # ------------------------------------------------------------------
    # The batching loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._not_empty:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if not self._queue and self._closed:
                    return
                if (
                    not self.config.adaptive_flush
                    and not self._closed
                    and self.config.max_wait_us > 0
                ):
                    # Dwell for stragglers: hold the drain until the
                    # batch fills or the wait budget runs out.
                    dwell_until = (
                        time.monotonic() + self.config.max_wait_us / 1e6
                    )
                    while (
                        len(self._queue) < self.config.max_batch
                        and not self._closed
                    ):
                        remaining = dwell_until - time.monotonic()
                        if remaining <= 0:
                            break
                        self._not_empty.wait(timeout=remaining)
                batch = [
                    self._queue.popleft()
                    for _ in range(
                        min(len(self._queue), self.config.max_batch)
                    )
                ]
                self._batches += 1
                self._largest_batch = max(self._largest_batch, len(batch))
            with self._service_lock:
                self._execute(batch)

    def _split_runs(
        self, batch: Sequence[_QueuedRequest]
    ) -> List[List[_QueuedRequest]]:
        """Cut one drained batch into bit-identity-safe packed runs.

        Runs preserve submission order.  A new run starts when the
        request kind (or identification options) changes, or when an
        authentication would put a chip into a run that already holds
        it -- per-chip breaker/limiter/drift/budget state must observe
        the earlier request's decision before the later one is
        admitted, exactly as sequential serving would.
        """
        runs: List[List[_QueuedRequest]] = []
        current: List[_QueuedRequest] = []
        current_key: Optional[Tuple] = None
        current_chips: set = set()
        for item in batch:
            key = item.run_key()
            hazard = item.kind == "auth" and item.chip_key in current_chips
            if current and (key != current_key or hazard):
                runs.append(current)
                current, current_chips = [], set()
            current_key = key
            current.append(item)
            if item.kind == "auth":
                current_chips.add(item.chip_key)
        if current:
            runs.append(current)
        return runs

    def _effective_deadline(self, item: _QueuedRequest) -> Optional[float]:
        """Charge queue time against an explicit per-request deadline.

        A sequential caller's clock starts at admission; a queued
        request must not gain budget by waiting, so the wait (on the
        service clock) is deducted.  A request that expired in the
        queue is still admitted with a zero budget and denied
        ``DEADLINE_EXCEEDED`` -- the same audited decision a
        sequential call that ran out of time renders.  ``None``
        (meaning the service-config default, measured from admission)
        passes through untouched.
        """
        if item.deadline is None:
            return None
        waited = self._service._clock() - item.enqueued_at
        return max(0.0, item.deadline - waited)

    def _execute(self, batch: Sequence[_QueuedRequest]) -> None:
        for run in self._split_runs(batch):
            with self._mutex:
                self._runs += 1
            try:
                if run[0].kind == "auth":
                    self._execute_auth(run)
                else:
                    self._execute_identify(run)
            except BaseException as exc:  # pragma: no cover - safety net
                for item in run:
                    if not item.future.done():
                        item.future.set_exception(exc)

    def _execute_auth(self, run: Sequence[_QueuedRequest]) -> None:
        results = self._service.authenticate_batch(
            [item.responder for item in run],
            [item.claimed_id for item in run],
            conditions=[item.condition for item in run],
            deadlines=[self._effective_deadline(item) for item in run],
        )
        for item, result in zip(run, results):
            if isinstance(result, BaseException):
                item.future.set_exception(result)
            else:
                item.future.set_result(result)

    def _execute_identify(self, run: Sequence[_QueuedRequest]) -> None:
        guards = [_GuardedResponder(item.responder) for item in run]
        try:
            results = self._service.identify_many(
                guards,
                conditions=[item.condition for item in run],
                min_match_fraction=run[0].min_match_fraction,
                return_scores=run[0].return_scores,
            )
        except Exception as exc:
            # A batch-level refusal (e.g. no identities enrolled) is
            # what every sequential call would have gotten too.
            for item in run:
                item.future.set_exception(exc)
            return
        for item, guard, result in zip(run, guards, results):
            if guard.error is not None:
                item.future.set_exception(guard.error)
            else:
                item.future.set_result(result)

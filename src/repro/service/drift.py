"""Drift-aware graceful degradation: rolling FRR tracking and the ladder.

Sec. 5.2 of the paper shows what environmental drift does to a
nominal-enrolled chip: marginal challenges start flipping at the V/T
corners, and the zero-HD policy turns every flip into a false reject.
The serving path cannot see the operating condition (the device's
environment is unknown to the server), but it *can* see the symptom: a
rising per-chip false-reject rate.  :class:`DriftMonitor` tracks that
rate over a rolling window of scored sessions and walks a
graceful-degradation ladder:

* **Rung 0 -- zero-HD one-shot** (the paper's protocol, Fig. 7): one
  read per challenge, perfect match required.
* **Rung 1 -- k-shot majority vote**: the device answers each challenge
  with the majority over *k* reads
  (:func:`repro.baselines.majority_vote.majority_vote_responses`),
  debouncing noise-induced flips while keeping the zero-HD criterion.
  Costs device reads, not pool budget (the *same* issued set is
  re-read, which is the reliability/cost trade-off CDC-XPUF-style
  designs formalise -- Li & Zhuang, arXiv:2409.17902).
* **Rung 2 -- threshold re-tightening**: the chip is flagged for
  beta re-tightening and served from a selector whose
  (beta0/beta1-scaled) thresholds keep a wider stability margin
  (:meth:`repro.core.thresholds.ThresholdPair.scale`), recovering the
  paper's Sec.-5.2 fix of validating the betas across corners.

The monitor de-escalates on a sustained recovery, so a chip that was
only transiently cold/brown-out walks back down to the cheap rung.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Tuple

from repro.utils.validation import check_positive_int, check_probability

__all__ = ["DriftMonitor", "DriftPolicy", "MAX_RUNG"]

#: Highest degradation rung (threshold re-tightening + majority vote).
MAX_RUNG = 2


@dataclasses.dataclass(frozen=True)
class DriftPolicy:
    """Knobs of the rolling-FRR escalation logic.

    Attributes
    ----------
    window:
        Scored sessions in the rolling window.
    min_samples:
        Scored sessions required before any ladder move.
    escalate_frr:
        Rolling false-reject rate at or above which the monitor climbs
        one rung (checked as soon as ``min_samples`` sessions are in).
    recover_clean:
        Consecutive approved sessions after which the monitor steps
        back down one rung.  Recovery is deliberately much slower than
        escalation -- a chip sitting at a V/T corner on the
        re-tightened rung shows a near-zero FRR precisely *because* of
        the rung, and de-escalating on a few clean sessions would
        re-expose the drift and oscillate.  A single reject resets the
        streak.
    """

    window: int = 20
    min_samples: int = 8
    escalate_frr: float = 0.15
    recover_clean: int = 40

    def __post_init__(self) -> None:
        check_positive_int(self.window, "window")
        check_positive_int(self.min_samples, "min_samples")
        check_probability(self.escalate_frr, "escalate_frr")
        check_positive_int(self.recover_clean, "recover_clean")
        if self.min_samples > self.window:
            raise ValueError(
                f"min_samples ({self.min_samples}) cannot exceed the "
                f"window ({self.window})"
            )


class DriftMonitor:
    """Rolling false-reject tracking and ladder position for one chip.

    The monitor only sees *scored* sessions (approved or rejected);
    fast-fails and device errors say nothing about response drift.
    Every ladder move empties the window, so each rung is judged on
    evidence gathered *at that rung* rather than on rejects the
    previous rung accumulated.
    """

    def __init__(self, policy: DriftPolicy = DriftPolicy()) -> None:
        self.policy = policy
        self._outcomes: Deque[bool] = deque(maxlen=policy.window)
        self._rung = 0
        self._moves: List[Tuple[int, int]] = []
        self._flagged = False
        self._clean_streak = 0

    @property
    def rung(self) -> int:
        """Current degradation-ladder rung (0..:data:`MAX_RUNG`)."""
        return self._rung

    @property
    def flagged_for_retightening(self) -> bool:
        """Whether the chip ever reached rung 2 (sticky operator flag)."""
        return self._flagged

    @property
    def moves(self) -> List[Tuple[int, int]]:
        """``(from_rung, to_rung)`` ladder moves, oldest first."""
        return list(self._moves)

    @property
    def clean_streak(self) -> int:
        """Consecutive approved sessions since the last reject or move."""
        return self._clean_streak

    @property
    def rolling_frr(self) -> float:
        """False-reject rate over the current window (NaN when empty)."""
        if not self._outcomes:
            return float("nan")
        rejects = sum(1 for approved in self._outcomes if not approved)
        return rejects / len(self._outcomes)

    def observe(self, approved: bool) -> int:
        """Feed one scored session; returns the (possibly new) rung.

        The caller compares the return value against the previous
        :attr:`rung` to emit escalation/recovery audit events.
        """
        approved = bool(approved)
        self._outcomes.append(approved)
        self._clean_streak = self._clean_streak + 1 if approved else 0
        if (
            self._rung > 0
            and self._clean_streak >= self.policy.recover_clean
        ):
            # Hysteresis: escalation below fires on min_samples of
            # window statistics, recovery only on a long unbroken run
            # of approvals (see DriftPolicy.recover_clean).
            self._move(self._rung - 1)
            return self._rung
        if len(self._outcomes) < self.policy.min_samples:
            return self._rung
        if self.rolling_frr >= self.policy.escalate_frr and self._rung < MAX_RUNG:
            self._move(self._rung + 1)
        return self._rung

    def _move(self, rung: int) -> None:
        self._moves.append((self._rung, rung))
        self._rung = rung
        if rung == MAX_RUNG:
            self._flagged = True
        self._outcomes.clear()
        self._clean_streak = 0

"""Structured audit events of the resilient authentication service.

Every decision the service takes -- approvals, rejections, fast-fails,
degradation-ladder moves, budget warnings -- is recorded as one
:class:`AuthEvent` in an append-only :class:`AuditLog`.  The events are
the service's source of truth for reliability reporting *and* for the
protocol's security invariants: each event carries a digest of every
challenge row it issued, so "no challenge was ever replayed" is a
property a test (or an auditor) can check from the log alone, without
trusting the serving code.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = ["AuthOutcome", "AuthEvent", "AuditLog", "challenge_digests"]


class AuthOutcome(str, enum.Enum):
    """Outcome taxonomy of the service's audit events.

    Decision outcomes (one per authentication request):

    * ``APPROVED`` / ``REJECTED`` -- a session completed and was scored.
    * ``DEVICE_ERROR`` -- every bounded read attempt failed.
    * ``BREAKER_OPEN`` -- fast-fail: the chip's circuit breaker is open.
    * ``RATE_LIMITED`` -- fast-fail: throttle window or reject lockout.
    * ``POOL_EXHAUSTED`` -- refused: the never-used challenge pool is
      spent (the service never replays instead).
    * ``DEADLINE_EXCEEDED`` -- the request's time budget ran out.
    * ``UNKNOWN_CHIP`` -- the claimed identity is not enrolled.
    * ``REVOKED`` -- fast-fail: the claimed identity has been revoked.
      No challenge is issued (a revoked chip must get zero transcript
      material), so these events never carry digests.

    Informational outcomes (zero or more per request):

    * ``READ_FAILED`` -- one issued challenge set was burnt by a failed
      device read (the request may still be retried).
    * ``RUNG_ESCALATED`` / ``RUNG_RECOVERED`` -- the drift monitor moved
      the chip along the degradation ladder.
    * ``RETIGHTEN_FLAGGED`` -- the chip was flagged for threshold
      re-tightening (ladder rung 2).
    * ``RETIGHTEN_APPLIED`` -- an operator committed the flagged
      re-tightening into the enrollment database
      (:meth:`AuthenticationService.apply_retightening`).
    * ``REVOCATION_COMMITTED`` -- an operator revoked the identity
      (:meth:`AuthenticationService.revoke`); ``challenges_spent``
      carries the *negative* of the reclaimed pool balance and
      ``detail`` the operator's reason.
    * ``BUDGET_LOW`` -- the challenge pool crossed its low-water mark.
    * ``OVERLOAD_SHED`` -- the batching front end's bounded queue was
      full and the submission was refused with a typed
      :class:`~repro.service.fleet.OverloadError` *before* admission:
      no request number is consumed, no challenge is issued, and no
      per-chip state is touched (the event's ``chip_id`` is the
      claimed identity when the caller supplied one).

    Identification outcomes (one per :meth:`identify_many` item):

    * ``IDENTIFIED`` / ``UNIDENTIFIED`` -- a 1:N codebook sweep did /
      did not resolve the device to an enrolled identity.  These events
      carry **no** challenge digests: codebook blocks are persistent
      identification material, not one-shot session challenges, so they
      live outside the no-replay accounting.
    """

    APPROVED = "approved"
    REJECTED = "rejected"
    DEVICE_ERROR = "device-error"
    BREAKER_OPEN = "breaker-open"
    RATE_LIMITED = "rate-limited"
    POOL_EXHAUSTED = "pool-exhausted"
    DEADLINE_EXCEEDED = "deadline-exceeded"
    UNKNOWN_CHIP = "unknown-chip"
    REVOKED = "revoked"
    READ_FAILED = "read-failed"
    RUNG_ESCALATED = "rung-escalated"
    RUNG_RECOVERED = "rung-recovered"
    RETIGHTEN_FLAGGED = "retighten-flagged"
    RETIGHTEN_APPLIED = "retighten-applied"
    REVOCATION_COMMITTED = "revocation-committed"
    BUDGET_LOW = "budget-low"
    OVERLOAD_SHED = "overload-shed"
    IDENTIFIED = "identified"
    UNIDENTIFIED = "unidentified"


#: Decision outcomes: exactly one of these ends every request.
DECISION_OUTCOMES = frozenset(
    {
        AuthOutcome.APPROVED,
        AuthOutcome.REJECTED,
        AuthOutcome.DEVICE_ERROR,
        AuthOutcome.BREAKER_OPEN,
        AuthOutcome.RATE_LIMITED,
        AuthOutcome.POOL_EXHAUSTED,
        AuthOutcome.DEADLINE_EXCEEDED,
        AuthOutcome.UNKNOWN_CHIP,
        AuthOutcome.REVOKED,
    }
)


def challenge_digests(challenges: np.ndarray) -> Tuple[str, ...]:
    """Per-row BLAKE2b digests of a challenge matrix.

    The digest of a challenge is a stable function of its bit pattern
    (dtype- and layout-independent), so equal challenges issued by
    different sessions produce equal digests -- which is exactly what
    lets the audit log prove the no-replay invariant.
    """
    rows = np.ascontiguousarray(np.asarray(challenges, dtype=np.int8))
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-D challenge matrix, got shape {rows.shape}")
    return tuple(
        hashlib.blake2b(row.tobytes(), digest_size=8).hexdigest() for row in rows
    )


@dataclasses.dataclass(frozen=True)
class AuthEvent:
    """One structured audit record.

    Attributes
    ----------
    seq:
        Monotone event sequence number (log order).
    request:
        Request sequence number the event belongs to (several events can
        share a request: burnt read attempts, rung moves, the decision).
    chip_id:
        Claimed identity, or ``None`` when no identity could be resolved.
    outcome:
        The :class:`AuthOutcome` taxonomy entry.
    rung:
        Degradation-ladder rung in force (0 = zero-HD one-shot).
    attempt:
        Device-read attempt index within the request (decision events
        carry the total attempts consumed).
    n_challenges / n_mismatches:
        Session geometry and score, where a session was scored.
    challenges_spent:
        Never-used challenges charged to the pool by this event.
    budget_remaining:
        Pool balance after the charge.
    condition:
        ``str(OperatingCondition)`` the device responded under.
    breaker_state:
        Circuit-breaker state observed when the event fired.
    latency:
        Seconds from request admission to this event (service clock).
    detail:
        Free-form human-readable context.
    digests:
        Per-row digests of every challenge issued by this event.
    """

    seq: int
    request: int
    chip_id: Optional[str]
    outcome: AuthOutcome
    rung: int = 0
    attempt: int = 0
    n_challenges: int = 0
    n_mismatches: Optional[int] = None
    challenges_spent: int = 0
    budget_remaining: Optional[int] = None
    condition: str = ""
    breaker_state: str = ""
    latency: float = 0.0
    detail: str = ""
    digests: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary (enum flattened to its string value)."""
        payload = dataclasses.asdict(self)
        payload["outcome"] = self.outcome.value
        payload["digests"] = list(self.digests)
        return payload


class AuditLog:
    """Append-only event log with query helpers for tests and reports."""

    def __init__(self) -> None:
        self._events: List[AuthEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AuthEvent]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[AuthEvent, ...]:
        """All events in log order."""
        return tuple(self._events)

    def append(self, event: AuthEvent) -> AuthEvent:
        """Record *event* (returned unchanged, for call-site chaining)."""
        if not isinstance(event, AuthEvent):
            raise TypeError(f"expected AuthEvent, got {type(event).__name__}")
        self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_chip(self, chip_id: str) -> List[AuthEvent]:
        """Events belonging to one claimed identity."""
        return [e for e in self._events if e.chip_id == chip_id]

    def with_outcome(self, outcome: AuthOutcome) -> List[AuthEvent]:
        """Events carrying one outcome."""
        return [e for e in self._events if e.outcome is outcome]

    def decisions(self) -> List[AuthEvent]:
        """The per-request decision events, in request order."""
        return [e for e in self._events if e.outcome in DECISION_OUTCOMES]

    def outcome_counts(self) -> Dict[str, int]:
        """``outcome value -> count`` over the whole log."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.outcome.value] = counts.get(event.outcome.value, 0) + 1
        return counts

    def issued_digests(self, chip_id: Optional[str] = None) -> List[str]:
        """Every issued challenge digest, in issue order.

        The no-replay invariant of the serving path is precisely
        ``len(digests) == len(set(digests))`` per chip.
        """
        return [
            digest
            for event in self._events
            if chip_id is None or event.chip_id == chip_id
            for digest in event.digests
        ]

    def replayed_digests(self) -> Dict[str, List[str]]:
        """``chip_id -> digests issued more than once`` (empty = healthy)."""
        replayed: Dict[str, List[str]] = {}
        chip_ids = {e.chip_id for e in self._events if e.chip_id is not None}
        for chip_id in sorted(chip_ids):
            seen: set = set()
            duplicates: List[str] = []
            for digest in self.issued_digests(chip_id):
                if digest in seen:
                    duplicates.append(digest)
                seen.add(digest)
            if duplicates:
                replayed[chip_id] = duplicates
        return replayed

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the log as JSON lines (one event per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(json.dumps(event.to_dict(), default=float) + "\n")
        return path

"""The fleet-lifecycle driver: a year of a living fleet, replayed in seconds.

``serve-sim`` (:mod:`repro.service.simulation`) answers "does the
serving path survive environmental drift?".  This module answers the
other deployment question: does it survive the *fleet itself* changing
under load?  A real deployment never stops mutating -- devices are
enrolled (churn), age until their thresholds need re-tightening
(aging-driven retighten storms, the paper's beta margins meeting BTI
drift), and leave the fleet terminally (revocation waves).  Every one
of those mutations used to be a codebook rebuild stall; the lifecycle
driver exists to prove the incremental-invalidation serving plane
absorbs them, under injected faults, without ever violating a protocol
invariant.

One seeded run drives, on the :class:`VirtualClock`:

* **enrollment churn** -- new chips join the fleet on a fixed cadence;
* **aging** -- every device's delays walk the BTI power law
  (:mod:`repro.silicon.aging`), keyed by chip id so each part stays on
  one consistent trajectory across the whole simulated life;
* **retighten storms** -- operator re-tightening campaigns over the
  whole active fleet (plus any drift-ladder-flagged chips), i.e. a
  fingerprint-invalidation wave across every codebook row at once;
* **revocation waves** -- identities leave terminally through
  :meth:`AuthenticationService.revoke` (tombstone + budget reclaim +
  audit);
* **traffic** -- per-tick authentication and identification probes
  against the aged responders, including probes *by revoked devices*
  that must be refused;
* **chaos** -- an optional :class:`repro.faults.FaultPlan` kills
  maintenance ticks (:attr:`Site.SERVICE_LIFECYCLE`), crashes codebook
  syncs (:attr:`Site.CODEBOOK_SYNC`) and corrupts persisted codebooks
  (:attr:`Site.CODEBOOK_PERSIST`); the driver keeps serving and the
  report proves what degraded.

The report's acceptance gates are the PR's contract: bounded nominal
FRR, bounded availability, **zero** challenge replays, **zero**
successful authentications or identifications by revoked chips, and
codebook staleness never served beyond the configured bound.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set

from repro.core.codebook import CodebookPolicy
from repro.core.server import AuthenticationServer
from repro.crp.dataset import CorruptDatasetError
from repro.faults import FaultPlan, InjectedFault, Site
from repro.service.drift import DriftPolicy
from repro.service.events import AuthOutcome
from repro.service.service import AuthenticationService, ServiceConfig
from repro.service.simulation import VirtualClock
from repro.silicon.aging import AgingModel, age_chip
from repro.silicon.chip import PufChip, fabricate_lot
from repro.utils.rng import SeedLike, derive_generator
from repro.utils.validation import check_positive_int

__all__ = ["LifecycleConfig", "LifecycleReport", "run_lifecycle_sim"]


@dataclasses.dataclass(frozen=True)
class LifecycleConfig:
    """Shape of one simulated fleet life.

    Attributes
    ----------
    n_chips / n_xors / n_stages:
        Initial fleet geometry.
    ticks:
        Lifecycle steps; with the default ``hours_per_tick`` (one
        month) the default 12 ticks replay a simulated year.
    hours_per_tick:
        Operational hours each tick advances the fleet's age (and the
        virtual clock).
    requests_per_chip:
        Authentication probes per active chip per tick.
    enroll_interval:
        A new chip joins every this-many ticks (0 disables churn).
    revoke_interval:
        The oldest active chip is revoked every this-many ticks
        (0 disables revocation waves; at least two chips always stay
        active).
    storm_interval:
        Every this-many ticks the *whole* active fleet is re-tightened
        in one operator campaign (0 disables storms) -- the worst-case
        codebook invalidation wave.
    storm_beta0 / storm_beta1:
        Beta scaling of a storm step.  Deliberately mild: storms model
        periodic margin maintenance, and they compose multiplicatively
        across the life.
    max_stale_rows / rebuild_batch:
        The server's deferred :class:`CodebookPolicy`: serve with at
        most this many pending rows, drain at most this many row
        builds per maintenance call.
    n_enroll_challenges / n_validation_challenges:
        Enrollment campaign sizes (smaller than production: churn means
        many enrollments per run).
    aging:
        The BTI drift law applied per tick.
    identify_probes:
        Active chips identified through the codebook plane per tick
        (also how staleness-at-serve-time is sampled).
    clients:
        0 (default) serves every probe sequentially.  Positive values
        pump all authentication and identification traffic through a
        :class:`~repro.service.frontend.BatchingFrontend` with up to
        this many requests in flight at once -- the coalescing loop
        packs them into shared scoring passes (and, combined with
        *sharded*, into shared shard round-trips) while the acceptance
        gates hold unchanged.
    sharded / n_shards:
        With *sharded* on, identification traffic is served by an
        inline-mode :class:`~repro.service.fleet.ShardDispatcher` over
        *n_shards* shared-memory shards instead of the in-process
        codebook -- same results (the fleet plane is bit-identical at
        full coverage), but the run additionally exercises shard
        refresh and re-layout under enrollment churn, revocation waves
        and retighten storms.  Note the fleet serves from fully
        materialized bytes, so deferred-codebook staleness reads as
        zero in this mode.
    max_nominal_frr / min_availability:
        Acceptance gates over the active-fleet authentication probes.
    """

    n_chips: int = 6
    n_xors: int = 4
    n_stages: int = 32
    ticks: int = 12
    hours_per_tick: float = 730.0
    requests_per_chip: int = 4
    enroll_interval: int = 3
    revoke_interval: int = 4
    storm_interval: int = 5
    storm_beta0: float = 0.92
    storm_beta1: float = 1.04
    max_stale_rows: int = 8
    rebuild_batch: Optional[int] = None
    n_enroll_challenges: int = 1200
    n_validation_challenges: int = 5000
    aging: AgingModel = AgingModel()
    identify_probes: int = 3
    clients: int = 0
    sharded: bool = False
    n_shards: int = 2
    max_nominal_frr: float = 0.02
    min_availability: float = 0.95

    def __post_init__(self) -> None:
        check_positive_int(self.n_chips, "n_chips")
        check_positive_int(self.ticks, "ticks")
        check_positive_int(self.requests_per_chip, "requests_per_chip")
        for name in ("enroll_interval", "revoke_interval", "storm_interval"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.hours_per_tick <= 0:
            raise ValueError(
                f"hours_per_tick must be positive, got {self.hours_per_tick}"
            )
        if not 0 < self.storm_beta0 <= 1 or self.storm_beta1 < 1:
            raise ValueError(
                "storm betas must satisfy 0 < beta0 <= 1 <= beta1, got "
                f"{self.storm_beta0}, {self.storm_beta1}"
            )
        check_positive_int(self.n_shards, "n_shards")
        if self.clients < 0:
            raise ValueError(f"clients must be >= 0, got {self.clients}")


@dataclasses.dataclass(frozen=True)
class LifecycleReport:
    """What one simulated fleet life did, and whether it passed.

    Attributes
    ----------
    ticks / simulated_hours:
        Length of the replayed life.
    enrolled_total / revoked_total / retightens:
        Fleet mutation counts (initial fleet + churn; revocation waves;
        storm + drift-flagged re-tightening steps).
    n_requests / outcome_counts:
        All service decisions over the run.
    frr / availability:
        Over the *active-fleet* authentication probes only: rejected /
        scored, and approved / all.
    revoked_probes / revoked_denials / revoked_approvals:
        Probes presented by revoked devices; approvals must be zero.
    revoked_identify_hits:
        Identification sweeps that resolved a revoked device to its
        revoked identity; must be zero (tombstoned rows cannot win).
    no_replay:
        Audit-log-verified: no challenge digest was ever issued twice.
    max_served_stale_rows / stale_served_ticks:
        Worst codebook staleness observed *at serve time* and how many
        ticks served stale at all -- the deferred policy's bound in
        action.
    codebook:
        Final codebook counters (rebuilds / restacks / in-place row
        writes / syncs) -- the incremental-invalidation audit trail.
    budget:
        Fleet-wide challenge-pool stats, including capacity reclaimed
        from revoked chips.
    maintenance_crashes / sync_crashes:
        Ticks whose maintenance was killed by the fault plan, and
        codebook syncs that died mid-flight (both recovered by retry).
    persist_saves / persist_failures / reloads / corrupt_recoveries:
        Persistence-chaos accounting: database saves attempted, saves
        killed by injected I/O faults, successful reloads, and corrupt
        codebook files that were detected and discarded for rebuild.
    gates:
        ``name -> {value, bound, ok}`` for every acceptance gate.
    passed:
        All gates ok.
    """

    ticks: int
    simulated_hours: float
    enrolled_total: int
    revoked_total: int
    retightens: int
    n_requests: int
    outcome_counts: Dict[str, int]
    frr: float
    availability: float
    revoked_probes: int
    revoked_denials: int
    revoked_approvals: int
    revoked_identify_hits: int
    no_replay: bool
    max_served_stale_rows: int
    stale_served_ticks: int
    codebook: Dict[str, int]
    budget: Dict[str, object]
    maintenance_crashes: int
    sync_crashes: int
    persist_saves: int
    persist_failures: int
    reloads: int
    corrupt_recoveries: int
    gates: Dict[str, Dict[str, object]]
    passed: bool
    wall_seconds: float
    params: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary form."""
        return dataclasses.asdict(self)

    def save(self, path) -> Path:
        """Write the report as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def run_lifecycle_sim(
    config: Optional[LifecycleConfig] = None,
    *,
    seed: SeedLike = 7,
    faults: Optional[FaultPlan] = None,
    workdir=None,
    report_path=None,
    progress: Optional[Callable[[str], None]] = None,
) -> LifecycleReport:
    """Replay one simulated fleet life; return the gated report.

    Parameters
    ----------
    config:
        The life's shape (:class:`LifecycleConfig`; defaults replay a
        year in monthly ticks).
    seed:
        Root seed -- fabrication, enrollment, aging directions, and
        every selection stream derive from it, so a report is exactly
        reproducible.
    faults:
        Optional chaos plan.  :attr:`Site.SERVICE_LIFECYCLE` faults
        (index = tick) kill that tick's maintenance work;
        :attr:`Site.CODEBOOK_SYNC` / :attr:`Site.CODEBOOK_PERSIST`
        faults hit the codebook plane; device/service-site faults pass
        through to the service as usual.
    workdir:
        Optional directory for persistence chaos: every maintenance
        tick saves the database there (through the fault plan) and
        reloads it, proving crash-mid-save and corrupt-on-disk recovery
        against the *live* fleet.
    report_path:
        Optional JSON output file.
    progress:
        Optional callback for human-readable progress lines.
    """
    cfg = config or LifecycleConfig()

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    t0 = time.perf_counter()
    clock = VirtualClock()

    # ------------------------------------------------------------------
    # Initial fleet.
    # ------------------------------------------------------------------
    lot_seed = int(derive_generator(seed, "lifecycle", "lot").integers(2**31))
    lot = fabricate_lot(cfg.n_chips, cfg.n_xors, cfg.n_stages, seed=lot_seed)
    chips: Dict[str, PufChip] = {chip.chip_id: chip for chip in lot}
    next_chip_index = cfg.n_chips

    server = AuthenticationServer(
        codebook_policy=CodebookPolicy(
            deferred=True,
            max_stale_rows=cfg.max_stale_rows,
            rebuild_batch=cfg.rebuild_batch,
        )
    )

    def enroll(chip: PufChip) -> None:
        server.enroll(
            chip,
            seed=int(
                derive_generator(seed, "lifecycle", "enroll", chip.chip_id)
                .integers(2**31)
            ),
            n_enroll_challenges=cfg.n_enroll_challenges,
            n_validation_challenges=cfg.n_validation_challenges,
        )

    for chip in lot:
        enroll(chip)
    enrolled_total = cfg.n_chips
    say(f"enrolled initial fleet of {cfg.n_chips} XOR-{cfg.n_xors} chips")

    service_config = ServiceConfig(
        max_requests_per_window=0,  # genuine maintenance traffic
        lockout_threshold=10,
        lockout_seconds=3600.0,
        drift=DriftPolicy(
            window=12, min_samples=4, escalate_frr=0.25, recover_clean=24
        ),
        retighten_beta0=0.5,
        retighten_beta1=1.5,
        pool_capacity=max(
            20_000, cfg.ticks * cfg.requests_per_chip * 64 * 4
        ),
    )
    service = AuthenticationService(
        server, service_config, seed=seed, clock=clock, faults=faults
    )
    book_seed = seed if isinstance(seed, int) else None
    server.codebook(service_config.n_challenges, seed=book_seed)

    dispatcher = None
    if cfg.sharded:
        from repro.service.fleet import FleetConfig, ShardDispatcher

        # Inline mode: same shard partition, scoring and merge code as
        # the worker fleet, without process churn inside the sim --
        # what this run exercises is refresh + re-layout under the
        # lifecycle's register/retighten/revoke interleavings.
        dispatcher = ShardDispatcher(
            server,
            FleetConfig(
                n_shards=cfg.n_shards,
                n_challenges=service_config.n_challenges,
                inline=True,
            ),
            seed=book_seed,
        )
        service.attach_fleet(dispatcher)
        say(
            f"sharded identification plane: {cfg.n_shards} inline "
            f"shards over {len(server.active_ids)} identities"
        )

    frontend = None
    if cfg.clients:
        from repro.service.frontend import BatchingFrontend, FrontendConfig

        frontend = BatchingFrontend(
            service,
            FrontendConfig(
                max_batch=cfg.clients,
                max_pending=max(4 * cfg.clients, 64),
            ),
        )
        say(
            f"traffic through the batching front end: {cfg.clients} "
            f"concurrent clients"
        )

    def serve_auth(traffic: List[PufChip]) -> List:
        """Authenticate *traffic*, sequentially or in concurrent waves.

        Wave mode advances the clock one tick per request up front, so
        the batch's decisions never race the virtual time; every wave
        is joined before the next (or any fleet mutation) starts.
        """
        results = []
        if frontend is None:
            for responder in traffic:
                clock.advance(1.0)
                results.append(service.authenticate(responder))
        else:
            for start in range(0, len(traffic), cfg.clients):
                wave = traffic[start:start + cfg.clients]
                clock.advance(float(len(wave)))
                futures = [
                    frontend.submit_authenticate(responder)
                    for responder in wave
                ]
                results.extend(future.result() for future in futures)
        return results

    # ------------------------------------------------------------------
    # The life.
    # ------------------------------------------------------------------
    outcome_counts: Dict[str, int] = {}
    active_approved = active_rejected = active_denied = 0
    revoked_probes = revoked_denials = revoked_approvals = 0
    revoked_identify_hits = 0
    identified_hits = identified_misses = 0
    max_served_stale = 0
    stale_served_ticks = 0
    maintenance_crashes = sync_crashes = 0
    persist_saves = persist_failures = reloads = corrupt_recoveries = 0
    retightens = 0
    committed_retightens: Set[str] = set()

    def count(outcome: AuthOutcome) -> None:
        outcome_counts[outcome.value] = outcome_counts.get(outcome.value, 0) + 1

    for tick in range(cfg.ticks):
        hours = (tick + 1) * cfg.hours_per_tick
        maintenance_ok = True
        if faults is not None:
            try:
                faults.check(Site.SERVICE_LIFECYCLE, tick)
            except InjectedFault:
                maintenance_ok = False
                maintenance_crashes += 1

        # -- churn: a new chip joins ----------------------------------
        if cfg.enroll_interval and (tick + 1) % cfg.enroll_interval == 0:
            chip = PufChip.create(
                cfg.n_xors,
                cfg.n_stages,
                derive_generator(seed, "lifecycle", "chip", next_chip_index),
                chip_id=f"chip-{next_chip_index}",
            )
            next_chip_index += 1
            chips[chip.chip_id] = chip
            enroll(chip)
            enrolled_total += 1

        # -- revocation wave ------------------------------------------
        if (
            cfg.revoke_interval
            and (tick + 1) % cfg.revoke_interval == 0
            and len(server.active_ids) > 2
        ):
            victim = server.active_ids[0]  # the oldest active identity
            service.revoke(victim, reason=f"lifecycle wave, tick {tick}")

        # -- aging: every surviving device is now `hours` old ---------
        aged: Dict[str, PufChip] = {
            chip_id: age_chip(
                chips[chip_id],
                hours,
                cfg.aging,
                derive_generator(seed, "lifecycle", "aging", chip_id),
            )
            for chip_id in chips
        }

        # -- retighten storm + drift-flagged commits ------------------
        if cfg.storm_interval and (tick + 1) % cfg.storm_interval == 0:
            storm_targets = server.active_ids
            for chip_id in storm_targets:
                server.retighten(chip_id, cfg.storm_beta0, cfg.storm_beta1)
                retightens += 1
            say(
                f"tick {tick}: retighten storm over {len(storm_targets)} "
                f"chips (codebook pending: "
                f"{server.codebook_status(service_config.n_challenges).get('pending_rows', 0)})"
            )
        for chip_id in service.flagged_chips:
            if chip_id in committed_retightens or server.is_revoked(chip_id):
                continue
            service.apply_retightening(chip_id)
            committed_retightens.add(chip_id)
            retightens += 1

        # -- traffic: the active fleet authenticates ------------------
        fleet_traffic = [
            aged[chip_id]
            for chip_id in server.active_ids
            for _ in range(cfg.requests_per_chip)
        ]
        for result in serve_auth(fleet_traffic):
            count(result.outcome)
            if result.outcome is AuthOutcome.APPROVED:
                active_approved += 1
            elif result.outcome is AuthOutcome.REJECTED:
                active_rejected += 1
            else:
                active_denied += 1

        # -- traffic: identification through the (possibly stale) book
        probe_ids = server.active_ids[: cfg.identify_probes]
        if probe_ids:
            if frontend is None:
                results = service.identify_many(
                    [aged[c] for c in probe_ids]
                )
            else:
                futures = [
                    frontend.submit_identify(aged[c]) for c in probe_ids
                ]
                results = [future.result() for future in futures]
            for chip_id, result in zip(probe_ids, results):
                if result.chip_id == chip_id:
                    identified_hits += 1
                else:
                    identified_misses += 1
            served_stale = server.codebook_status(
                service_config.n_challenges
            ).get("pending_rows", 0)
            max_served_stale = max(max_served_stale, int(served_stale))
            if served_stale:
                stale_served_ticks += 1

        # -- traffic: revoked devices keep knocking -------------------
        for chip_id in sorted(server.revocations)[:3]:
            responder = aged[chip_id]
            result = serve_auth([responder])[0]
            count(result.outcome)
            revoked_probes += 1
            if result.outcome is AuthOutcome.APPROVED:
                revoked_approvals += 1
            else:
                revoked_denials += 1
            sweep = server.identify(responder)
            if sweep.chip_id == chip_id:
                revoked_identify_hits += 1

        # -- maintenance: drain rebuilds, persistence chaos -----------
        if maintenance_ok:
            try:
                server.sync_codebooks(faults=faults)
            except InjectedFault:
                sync_crashes += 1
            if workdir is not None:
                try:
                    server.save_database(workdir, faults=faults)
                    persist_saves += 1
                except (InjectedFault, OSError):
                    persist_failures += 1
                try:
                    reloaded = AuthenticationServer.load_database(workdir)
                except (FileNotFoundError, CorruptDatasetError):
                    pass
                else:
                    reloads += 1
                    corrupt_recoveries += reloaded.codebook_recoveries

        clock.advance(cfg.hours_per_tick * 3600.0)
        say(
            f"tick {tick + 1}/{cfg.ticks}: "
            f"{len(server.active_ids)} active / "
            f"{len(server.revocations)} revoked, age {hours:.0f} h"
        )

    # Converge: the life ends with a fully drained codebook.
    server.sync_codebooks(limit=None)

    # ------------------------------------------------------------------
    # Gates and report.
    # ------------------------------------------------------------------
    frontend_stats: Optional[Dict[str, object]] = None
    if frontend is not None:
        frontend_stats = frontend.stats
        frontend.close()

    fleet_stats: Optional[Dict[str, object]] = None
    if dispatcher is not None:
        fleet_stats = {
            "n_shards": cfg.n_shards,
            "min_coverage": dispatcher.log.min_coverage(),
            "events": dispatcher.log.outcome_counts(),
            "epoch": dispatcher.epoch,
        }
        service.detach_fleet()
        dispatcher.close()

    scored = active_approved + active_rejected
    probes = scored + active_denied
    frr = active_rejected / scored if scored else 0.0
    availability = active_approved / probes if probes else 0.0
    no_replay = not service.audit.replayed_digests()
    book = server.codebook(service_config.n_challenges)

    gates = {
        "nominal_frr": {
            "value": frr, "bound": cfg.max_nominal_frr,
            "ok": frr <= cfg.max_nominal_frr,
        },
        "availability": {
            "value": availability, "bound": cfg.min_availability,
            "ok": availability >= cfg.min_availability,
        },
        "no_replay": {"value": no_replay, "bound": True, "ok": no_replay},
        "revoked_approvals": {
            "value": revoked_approvals, "bound": 0,
            "ok": revoked_approvals == 0,
        },
        "revoked_identify_hits": {
            "value": revoked_identify_hits, "bound": 0,
            "ok": revoked_identify_hits == 0,
        },
        "staleness": {
            "value": max_served_stale, "bound": cfg.max_stale_rows,
            "ok": max_served_stale <= cfg.max_stale_rows,
        },
    }

    report = LifecycleReport(
        ticks=cfg.ticks,
        simulated_hours=cfg.ticks * cfg.hours_per_tick,
        enrolled_total=enrolled_total,
        revoked_total=len(server.revocations),
        retightens=retightens,
        n_requests=probes + revoked_probes,
        outcome_counts=dict(sorted(outcome_counts.items())),
        frr=frr,
        availability=availability,
        revoked_probes=revoked_probes,
        revoked_denials=revoked_denials,
        revoked_approvals=revoked_approvals,
        revoked_identify_hits=revoked_identify_hits,
        no_replay=no_replay,
        max_served_stale_rows=max_served_stale,
        stale_served_ticks=stale_served_ticks,
        codebook={
            "rows": len(book),
            "rebuilds": book.rebuilds,
            "restacks": book.restacks,
            "row_writes": book.row_writes,
            "syncs": book.syncs,
        },
        budget=service.budget_stats,
        maintenance_crashes=maintenance_crashes,
        sync_crashes=sync_crashes,
        persist_saves=persist_saves,
        persist_failures=persist_failures,
        reloads=reloads,
        corrupt_recoveries=corrupt_recoveries,
        gates=gates,
        passed=all(gate["ok"] for gate in gates.values()),
        wall_seconds=time.perf_counter() - t0,
        params={
            "seed": seed,
            "config": dataclasses.asdict(cfg),
            "identified_hits": identified_hits,
            "identified_misses": identified_misses,
            "chaos": faults is not None,
            "persistence_chaos": workdir is not None,
            "sharded": cfg.sharded,
            "fleet": fleet_stats,
            "frontend": frontend_stats,
        },
    )
    if report_path is not None:
        report.save(report_path)
        say(f"lifecycle report -> {report_path}")
    say(
        f"done: FRR {report.frr:.1%}, availability {report.availability:.1%}, "
        f"{report.revoked_total} revoked ({report.revoked_denials} denials, "
        f"{report.revoked_approvals} approvals), "
        f"max served staleness {report.max_served_stale_rows} rows, "
        f"no_replay={report.no_replay}, passed={report.passed} "
        f"({report.wall_seconds:.1f}s)"
    )
    return report

"""The resilient authentication front end (:class:`AuthenticationService`).

:class:`~repro.core.server.AuthenticationServer` is the protocol
engine: given a responder it runs one Fig.-7 session and returns the
verdict.  This module wraps it in the machinery a serving deployment
needs when the responders are flaky radios in drifting environments and
some of the "responders" are adversaries:

* every authentication is a **supervised request** with a deadline and
  bounded device-read retries (each retry issues a *fresh* challenge
  set -- transcripts are never replayed);
* a per-chip **circuit breaker** stops a persistently failing device
  from burning challenge budget and latency (closed -> open ->
  half-open probe);
* a per-chip **rate limiter + lockout** throttles brute-force and
  chosen-challenge probing;
* a **drift monitor** watches the rolling false-reject rate and walks
  the graceful-degradation ladder (zero-HD one-shot -> k-shot majority
  vote -> threshold re-tightening), see :mod:`repro.service.drift`;
* **challenge-budget accounting** charges every issued challenge to a
  per-chip pool and refuses with :class:`PoolExhaustedError` rather
  than replaying;
* everything is recorded as structured :class:`AuthEvent` audit
  records, from which the no-replay invariant is checkable.

Fault hooks: a :class:`repro.faults.FaultPlan` wired through
``faults=`` fires at :attr:`Site.SERVICE_REQUEST` (request admission)
and :attr:`Site.SERVICE_READ` (each device-read attempt), so the whole
failure surface is exercisable deterministically in tests and in the
``serve-sim`` traffic simulator.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.majority_vote import majority_vote_responses
from repro.core.authentication import AuthResult, DeviceReadError, Responder
from repro.core.codebook import pack_responses, popcount
from repro.core.enrollment import EnrollmentRecord
from repro.core.lifecycle import RevocationRecord, RevokedChipError
from repro.core.selection import ChallengeSelector
from repro.core.server import (
    AuthenticationServer,
    IdentificationResult,
    UnknownChipError,
)
from repro.faults import FaultPlan, Site
from repro.service.budget import ChallengeBudget, PoolExhaustedError
from repro.service.drift import MAX_RUNG, DriftMonitor, DriftPolicy
from repro.service.events import AuditLog, AuthEvent, AuthOutcome, challenge_digests
from repro.service.fleet.dispatcher import OverloadError
from repro.service.resilience import CircuitBreaker, RateLimiter
from repro.silicon.environment import NOMINAL_CONDITION, OperatingCondition
from repro.utils.rng import SeedLike, derive_generator
from repro.utils.validation import check_positive_int

__all__ = ["AuthenticationService", "ServiceConfig", "ServiceResult"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """All knobs of the resilient serving path, in one picklable bag.

    Attributes
    ----------
    n_challenges:
        Challenges exchanged per session (the paper uses 64).
    tolerance:
        Mismatch budget (0 = the paper's zero-HD policy).
    max_read_attempts:
        Device-read attempts per request; each failed attempt burns its
        issued challenge set and the next attempt issues a fresh one.
    deadline:
        Default per-request time budget in seconds (``None`` =
        unbounded; a per-call deadline overrides it).
    breaker_failure_threshold / breaker_cooldown:
        Circuit-breaker trip count and open-state cooldown.
    max_requests_per_window / window_seconds:
        Per-chip throttle (0 requests disables throttling).
    lockout_threshold / lockout_seconds:
        Consecutive rejections that lock the identity out, and for how
        long (0 disables the lockout).
    drift:
        Rolling-FRR escalation policy of the degradation ladder.
    majority_votes:
        Device reads per challenge on ladder rungs >= 1.
    retighten_beta0 / retighten_beta1:
        Threshold scaling of the rung-2 selector
        (:meth:`~repro.core.thresholds.ThresholdPair.scale`); the
        defaults widen the unstable band aggressively, i.e. *tighten*
        selection -- corner-drift flips are largely deterministic, so
        majority voting alone cannot rescue them and the margin has to
        come from selection (the paper's Sec.-5.2 beta validation).
    pool_capacity:
        Provisioned never-used challenge pool per chip.
    low_water_fraction:
        Remaining pool fraction that triggers the low-water warning.
    """

    n_challenges: int = 64
    tolerance: int = 0
    max_read_attempts: int = 3
    deadline: Optional[float] = None
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 30.0
    max_requests_per_window: int = 30
    window_seconds: float = 60.0
    lockout_threshold: int = 5
    lockout_seconds: float = 120.0
    drift: DriftPolicy = DriftPolicy()
    majority_votes: int = 5
    retighten_beta0: float = 0.25
    retighten_beta1: float = 2.2
    pool_capacity: int = 100_000
    low_water_fraction: float = 0.10

    def __post_init__(self) -> None:
        check_positive_int(self.n_challenges, "n_challenges")
        check_positive_int(self.max_read_attempts, "max_read_attempts")
        check_positive_int(self.majority_votes, "majority_votes")
        check_positive_int(self.pool_capacity, "pool_capacity")
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.retighten_beta0 <= 0 or self.retighten_beta1 <= 0:
            raise ValueError(
                "retighten betas must be positive, got "
                f"{self.retighten_beta0}, {self.retighten_beta1}"
            )


@dataclasses.dataclass(frozen=True)
class ServiceResult:
    """Outcome of one supervised authentication request.

    Attributes
    ----------
    request:
        Request sequence number (joins the audit log).
    chip_id:
        Claimed identity (``None`` if it could not be resolved).
    outcome:
        Decision outcome (see :class:`AuthOutcome`).
    rung:
        Degradation-ladder rung the request was served at.
    attempts:
        Device-read attempts consumed.
    challenges_spent:
        Never-used challenges charged to the chip's pool.
    latency:
        Seconds from admission to decision (service clock).
    auth:
        The scored :class:`AuthResult` when a session completed.
    detail:
        Human-readable context for non-scored outcomes.
    """

    request: int
    chip_id: Optional[str]
    outcome: AuthOutcome
    rung: int = 0
    attempts: int = 0
    challenges_spent: int = 0
    latency: float = 0.0
    auth: Optional[AuthResult] = None
    detail: str = ""

    @property
    def approved(self) -> bool:
        """Server verdict (only :attr:`AuthOutcome.APPROVED` approves)."""
        return self.outcome is AuthOutcome.APPROVED


class _ChipState:
    """Per-identity serving state (breaker, limiter, drift, budget)."""

    def __init__(
        self,
        chip_id: str,
        config: ServiceConfig,
        clock: Callable[[], float],
    ) -> None:
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failure_threshold,
            cooldown=config.breaker_cooldown,
            clock=clock,
        )
        self.limiter = RateLimiter(
            max_requests=config.max_requests_per_window,
            window=config.window_seconds,
            lockout_threshold=config.lockout_threshold,
            lockout_seconds=config.lockout_seconds,
            clock=clock,
        )
        self.drift = DriftMonitor(config.drift)
        self.budget = ChallengeBudget(
            chip_id=chip_id,
            capacity=config.pool_capacity,
            low_water_fraction=config.low_water_fraction,
        )
        self.nonce = 0
        self.issued: Set[str] = set()
        self.retighten_announced = False
        self.retighten_committed = False
        self.tightened_selector: Optional[ChallengeSelector] = None


@dataclasses.dataclass
class _Session:
    """A completed device read, admitted but not yet scored."""

    request: int
    chip_id: str
    state: _ChipState
    rung: int
    attempts: int
    spent: int
    challenges: np.ndarray
    predicted: np.ndarray
    digests: Tuple[str, ...]
    responses: np.ndarray
    condition: OperatingCondition
    start: float


class AuthenticationService:
    """Drift-aware, fault-bounded front end over an enrollment database.

    Parameters
    ----------
    server:
        The wrapped :class:`~repro.core.server.AuthenticationServer`.
    config:
        Serving knobs (defaults reproduce a sane small deployment).
    seed:
        Root seed of the per-session challenge selection streams.  Each
        issued set derives from ``(seed, "service", chip_id, nonce)``
        with a per-chip monotone nonce, so no two sessions -- and no
        two retry attempts -- ever share a selection stream.
    clock:
        Monotonic time source; inject a virtual clock for deterministic
        breaker/limiter/deadline behaviour in tests and simulations.
    faults:
        Optional deterministic fault plan (see :mod:`repro.faults`).
    audit:
        Optional externally owned audit log (a fresh one by default).
    """

    def __init__(
        self,
        server: AuthenticationServer,
        config: Optional[ServiceConfig] = None,
        *,
        seed: SeedLike = None,
        clock: Callable[[], float] = time.monotonic,
        faults: Optional[FaultPlan] = None,
        audit: Optional[AuditLog] = None,
    ) -> None:
        self._server = server
        self.config = config if config is not None else ServiceConfig()
        self._seed = seed
        self._clock = clock
        self._faults = faults
        self.audit = audit if audit is not None else AuditLog()
        self.warnings: List[str] = []
        self._chips: Dict[str, _ChipState] = {}
        self._requests = 0
        self._reads = 0
        self._fleet = None
        # Audit appends must stay atomic even when an overload shed is
        # recorded from a submitter thread while the batching loop is
        # mid-request (see BatchingFrontend): sequence numbers come
        # from the log length, so two unsynchronized appends could
        # claim one seq.
        self._audit_lock = threading.Lock()
        # When a sink is set (thread-locally, so a concurrent shed from
        # a submitter thread is unaffected), _emit buffers events there
        # instead of appending to the log.  authenticate_batch runs all
        # admissions before the shared scoring pass, so a mid-batch
        # denial would otherwise land in the log BEFORE an earlier
        # slot's decision; buffering per slot and flushing in slot
        # order keeps the event stream identical to sequential serving.
        self._emit_local = threading.local()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def server(self) -> AuthenticationServer:
        """The wrapped protocol server."""
        return self._server

    def attach_fleet(self, dispatcher) -> None:
        """Route :meth:`identify_many` through a sharded fleet.

        *dispatcher* is a :class:`~repro.service.fleet.ShardDispatcher`
        (duck-typed: anything with a compatible ``identify_many``).
        The service keeps emitting its usual IDENTIFIED/UNIDENTIFIED
        audit events; degraded batches additionally note their
        coverage in the event detail.
        """
        self._fleet = dispatcher

    def detach_fleet(self) -> None:
        """Return :meth:`identify_many` to the in-process codebook."""
        self._fleet = None

    @property
    def flagged_chips(self) -> List[str]:
        """Chips flagged for threshold re-tightening (reached rung 2)."""
        return sorted(
            chip_id
            for chip_id, state in self._chips.items()
            if state.drift.flagged_for_retightening
        )

    def chip_status(self, chip_id: str) -> Dict[str, object]:
        """Operator snapshot of one identity's serving state."""
        state = self._state(chip_id)
        return {
            "chip_id": chip_id,
            "rung": state.drift.rung,
            "rolling_frr": state.drift.rolling_frr,
            "flagged_for_retightening": state.drift.flagged_for_retightening,
            "breaker_state": state.breaker.state.value,
            "locked_out": state.limiter.locked_out,
            "budget_remaining": state.budget.remaining,
            "budget_low_water": state.budget.low_water,
            "challenges_spent": state.budget.spent,
            "challenges_released": state.budget.released,
            "revoked": self._server.is_revoked(chip_id),
        }

    # ------------------------------------------------------------------
    # The supervised request
    # ------------------------------------------------------------------
    def authenticate(
        self,
        responder: Responder,
        *,
        claimed_id: Optional[str] = None,
        condition: OperatingCondition = NOMINAL_CONDITION,
        deadline: Optional[float] = None,
    ) -> ServiceResult:
        """Run one supervised authentication request.

        Unlike the raw server -- which raises on unknown identities and
        propagates device failures -- the service always renders a
        decision: every admission failure, fast-fail and retry
        exhaustion comes back as a :class:`ServiceResult` with the
        matching :class:`AuthOutcome` (and an audit trail).  The single
        exception is pool exhaustion, which raises the typed
        :class:`PoolExhaustedError` after logging: an operator must
        intervene, the service will never replay a challenge.
        """
        outcome = self._run_session(responder, claimed_id, condition, deadline)
        if isinstance(outcome, ServiceResult):
            return outcome
        return self._score(outcome)

    def _run_session(
        self,
        responder: Responder,
        claimed_id: Optional[str],
        condition: OperatingCondition,
        deadline: Optional[float],
    ) -> "ServiceResult | _Session":
        """Admission + challenge issue + device read for one request.

        Returns the completed (unscored) :class:`_Session`, or the
        request's final :class:`ServiceResult` when it never reached
        scoring (admission fast-fail, read exhaustion, deadline).
        Shared by :meth:`authenticate` and :meth:`authenticate_many`;
        the latter scores many sessions in one packed pass.
        """
        request = self._requests
        self._requests += 1
        start = self._clock()
        deadline = self.config.deadline if deadline is None else deadline

        if claimed_id is None:
            claimed_id = getattr(responder, "chip_id", None)
            if claimed_id is None:
                raise ValueError(
                    "responder has no chip_id attribute; pass claimed_id explicitly"
                )
        try:
            self._server.record(claimed_id)
        except UnknownChipError as exc:
            self._emit(request, claimed_id, AuthOutcome.UNKNOWN_CHIP,
                       start=start, detail=str(exc))
            return ServiceResult(
                request=request, chip_id=claimed_id,
                outcome=AuthOutcome.UNKNOWN_CHIP,
                latency=self._clock() - start, detail=str(exc),
            )
        revocation = self._server.revocation(claimed_id)
        if revocation is not None:
            # Fast-fail before any per-chip state is touched: a revoked
            # identity gets no challenges, no breaker/limiter churn, no
            # transcript material whatsoever.
            detail = (
                f"identity revoked ({revocation.reason or 'no reason recorded'}"
                f", epoch {revocation.epoch})"
            )
            self._emit(request, claimed_id, AuthOutcome.REVOKED,
                       start=start, detail=detail)
            return ServiceResult(
                request=request, chip_id=claimed_id,
                outcome=AuthOutcome.REVOKED,
                latency=self._clock() - start, detail=detail,
            )

        state = self._state(claimed_id)

        def deny(outcome: AuthOutcome, detail: str = "", *,
                 rung: int = 0, attempts: int = 0,
                 spent: int = 0) -> ServiceResult:
            self._emit(request, claimed_id, outcome, start=start, rung=rung,
                       attempt=attempts, state=state, detail=detail,
                       condition=str(condition))
            return ServiceResult(
                request=request, chip_id=claimed_id, outcome=outcome,
                rung=rung, attempts=attempts, challenges_spent=spent,
                latency=self._clock() - start, detail=detail,
            )

        if not state.limiter.allow():
            return deny(
                AuthOutcome.RATE_LIMITED,
                "lockout active" if state.limiter.locked_out
                else "throttle window full",
                rung=state.drift.rung,
            )
        if not state.breaker.allow():
            return deny(AuthOutcome.BREAKER_OPEN, "circuit breaker open",
                        rung=state.drift.rung)
        state.limiter.record_admitted()

        rung = state.drift.rung
        selector = self._selector_for(claimed_id, state, rung)
        spent = 0

        try:
            if self._faults is not None:
                self._faults.check(Site.SERVICE_REQUEST, request)
        except DeviceReadError as exc:
            state.breaker.record_failure()
            return deny(AuthOutcome.DEVICE_ERROR, str(exc), rung=rung)

        for attempt in range(self.config.max_read_attempts):
            if deadline is not None and self._clock() - start >= deadline:
                state.breaker.record_failure()
                return deny(
                    AuthOutcome.DEADLINE_EXCEEDED,
                    f"deadline of {deadline}s exceeded before attempt {attempt}",
                    rung=rung, attempts=attempt, spent=spent,
                )

            challenges, predicted, digests = self._select_fresh(
                claimed_id, state, selector
            )
            try:
                crossed_low_water = state.budget.reserve(len(challenges))
            except PoolExhaustedError as exc:
                self._emit(request, claimed_id, AuthOutcome.POOL_EXHAUSTED,
                           start=start, rung=rung, attempt=attempt,
                           state=state, detail=str(exc))
                raise
            spent += len(challenges)
            state.issued.update(digests)
            if crossed_low_water:
                message = (
                    f"challenge pool of {claimed_id!r} below "
                    f"{state.budget.low_water_fraction:.0%} low-water mark "
                    f"({state.budget.remaining} remaining)"
                )
                self.warnings.append(message)
                self._emit(request, claimed_id, AuthOutcome.BUDGET_LOW,
                           start=start, rung=rung, attempt=attempt,
                           state=state, detail=message)

            try:
                responses = self._read(responder, challenges, condition, rung)
            except DeviceReadError as exc:
                self._emit(request, claimed_id, AuthOutcome.READ_FAILED,
                           start=start, rung=rung, attempt=attempt,
                           state=state, detail=str(exc), digests=digests,
                           n_challenges=len(challenges),
                           challenges_spent=len(challenges),
                           condition=str(condition))
                if attempt + 1 >= self.config.max_read_attempts:
                    state.breaker.record_failure()
                    return deny(
                        AuthOutcome.DEVICE_ERROR,
                        f"{attempt + 1} read attempts failed: {exc}",
                        rung=rung, attempts=attempt + 1, spent=spent,
                    )
                continue

            if deadline is not None and self._clock() - start >= deadline:
                state.breaker.record_failure()
                return deny(
                    AuthOutcome.DEADLINE_EXCEEDED,
                    f"deadline of {deadline}s exceeded during the device read",
                    rung=rung, attempts=attempt + 1, spent=spent,
                )
            responses = np.asarray(responses)
            if responses.shape != predicted.shape:
                raise ValueError(
                    f"responder returned shape {responses.shape}, "
                    f"expected {predicted.shape}"
                )
            return _Session(
                request=request, chip_id=claimed_id, state=state, rung=rung,
                attempts=attempt + 1, spent=spent, challenges=challenges,
                predicted=predicted, digests=digests, responses=responses,
                condition=condition, start=start,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def _per_item(
        self,
        name: str,
        n_items: int,
        values: Optional[Sequence],
        default,
    ) -> List:
        """Normalize a per-item override sequence against a batch default."""
        if values is None:
            return [default] * n_items
        if len(values) != n_items:
            raise ValueError(
                f"{n_items} responders but {len(values)} {name}"
            )
        return list(values)

    def _score_packed(
        self,
        pending: Sequence[Tuple[int, _Session]],
        results: List,
        sinks: Optional[Sequence[List[AuthEvent]]] = None,
    ) -> None:
        """Score completed sessions in one packed pass, in request order.

        All sessions are bit-packed and XOR + popcount scored together;
        each mismatch count is identical to the dense per-request
        comparison, so :meth:`_score` renders bit-identical decisions.
        *sinks* (slot-indexed, from :meth:`authenticate_batch`) routes
        each slot's decision events into that slot's buffer.
        """
        if not pending:
            return
        packed_predicted = pack_responses(
            np.stack([session.predicted for _, session in pending])
        )
        packed_responses = pack_responses(
            np.stack([session.responses for _, session in pending])
        )
        mismatches = popcount(
            np.bitwise_xor(packed_responses, packed_predicted)
        ).sum(axis=-1, dtype=np.int64)
        for (index, session), count in zip(pending, mismatches):
            if sinks is not None:
                self._emit_local.sink = sinks[index]
            try:
                results[index] = self._score(session, n_mismatches=int(count))
            finally:
                if sinks is not None:
                    self._emit_local.sink = None

    def authenticate_many(
        self,
        responders: Sequence[Responder],
        claimed_ids: Optional[Sequence[Optional[str]]] = None,
        *,
        condition: OperatingCondition = NOMINAL_CONDITION,
        conditions: Optional[Sequence[OperatingCondition]] = None,
        deadline: Optional[float] = None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
    ) -> List[ServiceResult]:
        """Batched supervised authentication sharing one scoring pass.

        Every request keeps its own admission decision (breaker,
        limiter, budget, deadline) and its own **fresh, never-replayed**
        challenge set -- batching changes nothing about the protocol's
        security posture.  What the batch shares is the scoring: all
        sessions that completed a device read are bit-packed and
        XOR + popcount scored in a single pass, then finalized in
        request order.  Results are identical to calling
        :meth:`authenticate` per request.

        *conditions* / *deadlines* optionally give every request its
        own operating condition and time budget (the batching front
        end coalesces requests that arrived with different ones); each
        overrides the batch-wide *condition* / *deadline* per item.
        """
        if claimed_ids is None:
            claimed_ids = [None] * len(responders)
        if len(claimed_ids) != len(responders):
            raise ValueError(
                f"{len(responders)} responders but {len(claimed_ids)} claimed ids"
            )
        conditions = self._per_item(
            "conditions", len(responders), conditions, condition
        )
        deadlines = self._per_item(
            "deadlines", len(responders), deadlines, deadline
        )
        results: List[Optional[ServiceResult]] = [None] * len(responders)
        pending: List[Tuple[int, _Session]] = []
        for index, (responder, claimed_id) in enumerate(
            zip(responders, claimed_ids)
        ):
            outcome = self._run_session(
                responder, claimed_id, conditions[index], deadlines[index]
            )
            if isinstance(outcome, ServiceResult):
                results[index] = outcome
            else:
                pending.append((index, outcome))
        self._score_packed(pending, results)
        return [result for result in results if result is not None]

    def authenticate_batch(
        self,
        responders: Sequence[Responder],
        claimed_ids: Optional[Sequence[Optional[str]]] = None,
        *,
        condition: OperatingCondition = NOMINAL_CONDITION,
        conditions: Optional[Sequence[OperatingCondition]] = None,
        deadline: Optional[float] = None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
    ) -> List["ServiceResult | BaseException"]:
        """:meth:`authenticate_many` with per-item exception capture.

        The coalescing front end's demux path: where
        :meth:`authenticate_many` propagates the first raised exception
        (aborting un-run batchmates), this variant runs *every*
        request and returns, slot for slot, either its
        :class:`ServiceResult` or the exception it raised -- exactly
        the exception the same request would have raised as a
        sequential :meth:`authenticate` call (e.g. the typed
        :class:`PoolExhaustedError` after its audit event).  One
        poisoned request therefore never takes its batchmates down.

        Audit events are buffered per slot and flushed in slot order
        after the scoring pass: admissions all run before scoring, so
        direct emission would let a later slot's denial precede an
        earlier slot's decision in the log.  The flushed stream is
        exactly what sequential serving would have written.
        """
        if claimed_ids is None:
            claimed_ids = [None] * len(responders)
        if len(claimed_ids) != len(responders):
            raise ValueError(
                f"{len(responders)} responders but {len(claimed_ids)} claimed ids"
            )
        conditions = self._per_item(
            "conditions", len(responders), conditions, condition
        )
        deadlines = self._per_item(
            "deadlines", len(responders), deadlines, deadline
        )
        results: List[Optional["ServiceResult | BaseException"]] = (
            [None] * len(responders)
        )
        pending: List[Tuple[int, _Session]] = []
        sinks: List[List[AuthEvent]] = [[] for _ in responders]
        try:
            for index, (responder, claimed_id) in enumerate(
                zip(responders, claimed_ids)
            ):
                self._emit_local.sink = sinks[index]
                try:
                    outcome = self._run_session(
                        responder, claimed_id,
                        conditions[index], deadlines[index],
                    )
                except Exception as exc:
                    results[index] = exc
                    continue
                finally:
                    self._emit_local.sink = None
                if isinstance(outcome, ServiceResult):
                    results[index] = outcome
                else:
                    pending.append((index, outcome))
            self._score_packed(pending, results, sinks)
        finally:
            self._emit_local.sink = None
            with self._audit_lock:
                for buffered in sinks:
                    for event in buffered:
                        self.audit.append(
                            dataclasses.replace(event, seq=len(self.audit))
                        )
        return list(results)

    def identify_many(
        self,
        responders: Sequence[Responder],
        *,
        condition: OperatingCondition = NOMINAL_CONDITION,
        conditions: Optional[Sequence[OperatingCondition]] = None,
        min_match_fraction: float = 0.95,
        return_scores: bool = False,
    ) -> List[IdentificationResult]:
        """Batched 1:N identification over the server's codebook plane.

        All requests of the batch share one codebook sync (one epoch
        check) and one packed matching pass; each device answers the
        stacked codebook query once.  Every item is audited as an
        :attr:`AuthOutcome.IDENTIFIED` / ``UNIDENTIFIED`` event --
        without challenge digests, since codebook blocks are persistent
        identification material outside the no-replay pool accounting.
        *conditions* optionally gives each responder its own operating
        condition, overriding *condition* per item.

        With a fleet attached (:meth:`attach_fleet`) the batch is
        driven through the dispatcher's coalescing buffer
        (:meth:`~repro.service.fleet.ShardDispatcher.submit` /
        :meth:`~repro.service.fleet.ShardDispatcher.flush`) instead of
        the in-process codebook, so one service-level batch costs one
        shard round-trip; a batch larger than the fleet's
        ``max_pending`` bound is served in bound-sized passes rather
        than shed (identification rows are scored independently, so
        the split is invisible in the results).  Fleet results carry a
        ``coverage`` attribute and may be degraded (never wrong) while
        shards are down.
        """
        start = self._clock()
        seed = self._seed if isinstance(self._seed, int) else None
        conditions = self._per_item(
            "conditions", len(responders), conditions, condition
        )
        if self._fleet is not None:
            results = []
            for responder, item_condition in zip(responders, conditions):
                try:
                    self._fleet.submit(responder, condition=item_condition)
                except OverloadError:
                    results.extend(
                        self._fleet.flush(
                            condition=condition,
                            min_match_fraction=min_match_fraction,
                            return_scores=return_scores,
                        )
                    )
                    self._fleet.submit(responder, condition=item_condition)
            results.extend(
                self._fleet.flush(
                    condition=condition,
                    min_match_fraction=min_match_fraction,
                    return_scores=return_scores,
                )
            )
        else:
            results = self._server.identify_many(
                responders,
                n_challenges=self.config.n_challenges,
                min_match_fraction=min_match_fraction,
                condition=condition,
                conditions=conditions,
                seed=seed,
                return_scores=return_scores,
            )
        for result, item_condition in zip(results, conditions):
            request = self._requests
            self._requests += 1
            matched = result.chip_id is not None
            coverage = getattr(result, "coverage", 1.0)
            detail = (
                f"best match {result.match_fraction:.4f} across "
                f"{len(self._server.active_ids)} identities"
            )
            if coverage < 1.0:
                detail += f" (degraded: coverage {coverage:.3f})"
            self._emit(
                request, result.chip_id,
                AuthOutcome.IDENTIFIED if matched else AuthOutcome.UNIDENTIFIED,
                start=start,
                n_challenges=self.config.n_challenges,
                detail=detail,
                condition=str(item_condition),
            )
        return results

    def record_shed(
        self, claimed_id: Optional[str], detail: str = ""
    ) -> None:
        """Audit one overload shed decided *upstream* of admission.

        The batching front end (:mod:`repro.service.frontend`) refuses
        submissions with a typed
        :class:`~repro.service.fleet.OverloadError` when its bounded
        queue is full; this hook makes the refusal audible in the
        service's own audit log.  A shed request never reached
        admission, so -- like the operator events -- it consumes no
        request number, issues no challenges and touches no per-chip
        state.
        """
        self._emit(
            self._requests, claimed_id, AuthOutcome.OVERLOAD_SHED,
            start=self._clock(), detail=detail,
        )

    def apply_retightening(self, chip_id: str) -> EnrollmentRecord:
        """Commit a drift-flagged chip's re-tightening into the database.

        The ladder's rung-2 selector tightens thresholds *transiently*
        (per serving session, see :meth:`_selector_for`); this operator
        action makes it durable: the scaled betas are folded into the
        stored :class:`EnrollmentRecord` via
        :meth:`AuthenticationServer.retighten`, which bumps the server
        epoch so identification codebook rows for the chip rebuild
        lazily.  The chip's transient rung-2 selector is dropped --
        after the commit the enrolled thresholds *are* the tightened
        ones (re-applying them on the ladder would tighten twice).
        """
        state = self._state(chip_id)
        record = self._server.retighten(
            chip_id, self.config.retighten_beta0, self.config.retighten_beta1
        )
        state.tightened_selector = None
        state.retighten_committed = True
        self._emit(
            self._requests, chip_id,
            AuthOutcome.RETIGHTEN_APPLIED, start=self._clock(),
            detail=(
                f"re-tightening committed: betas now {record.betas} "
                f"(epoch {self._server.epoch})"
            ),
        )
        return record

    def revoke(self, chip_id: str, reason: str = "") -> RevocationRecord:
        """Revoke an identity across the whole serving stack, now.

        One operator action threads the lifecycle transition through
        every layer: the server marks the identity terminally revoked
        and tombstones its codebook rows out of argmax
        (:meth:`AuthenticationServer.revoke`), the chip's unspent
        challenge budget is reclaimed
        (:meth:`~repro.service.budget.ChallengeBudget.release` -- the
        pool would otherwise leak forever), and an
        :attr:`AuthOutcome.REVOCATION_COMMITTED` audit event records
        who left and why.  Every subsequent request claiming this
        identity fast-fails as :attr:`AuthOutcome.REVOKED` without
        being issued a single challenge.

        Raises :class:`~repro.core.lifecycle.LifecycleError` on double
        revoke and :class:`UnknownChipError` for strangers -- both
        *before* anything is mutated.
        """
        revocation = self._server.revoke(chip_id, reason=reason)
        state = self._state(chip_id)
        reclaimed = state.budget.release()
        self._emit(
            self._requests, chip_id,
            AuthOutcome.REVOCATION_COMMITTED, start=self._clock(),
            state=state,
            challenges_spent=-reclaimed,
            detail=(
                f"revocation committed (epoch {revocation.epoch}): "
                f"{reason or 'no reason recorded'}; "
                f"{reclaimed} unspent challenges reclaimed"
            ),
        )
        return revocation

    @property
    def budget_stats(self) -> Dict[str, object]:
        """Fleet-wide challenge-pool accounting, including reclaimed capacity."""
        spent = sum(s.budget.spent for s in self._chips.values())
        released = sum(s.budget.released for s in self._chips.values())
        return {
            "chips": len(self._chips),
            "spent": spent,
            "released": released,
            "released_chips": sum(
                1 for s in self._chips.values() if s.budget.released
            ),
            "remaining": sum(s.budget.remaining for s in self._chips.values()),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _state(self, chip_id: str) -> _ChipState:
        if chip_id not in self._chips:
            self._chips[chip_id] = _ChipState(chip_id, self.config, self._clock)
        return self._chips[chip_id]

    def _selector_for(
        self, chip_id: str, state: _ChipState, rung: int
    ) -> ChallengeSelector:
        """The rung's selector: enrolled thresholds, or re-tightened ones.

        Once :meth:`apply_retightening` has committed the tightening
        into the enrollment database, the enrolled thresholds already
        *are* the tightened ones, so even rung 2 serves from the
        server's selector (a transient overlay would tighten twice).
        """
        if rung < MAX_RUNG or state.retighten_committed:
            return self._server.selector(chip_id)
        if state.tightened_selector is None:
            record = self._server.record(chip_id)
            pairs = [
                pair.scale(self.config.retighten_beta0, self.config.retighten_beta1)
                for pair in record.adjusted_pairs
            ]
            state.tightened_selector = ChallengeSelector(record.xor_model, pairs)
        return state.tightened_selector

    def _select_fresh(
        self,
        chip_id: str,
        state: _ChipState,
        selector: ChallengeSelector,
    ) -> Tuple[np.ndarray, np.ndarray, Tuple[str, ...]]:
        """Select ``n_challenges`` never-issued challenges for *chip_id*.

        Each draw derives an independent stream from the per-chip nonce;
        rows that were ever issued before (across sessions, retries and
        ladder rungs) are dropped and redrawn, so the no-replay
        invariant is *enforced*, not merely probable.
        """
        n_needed = self.config.n_challenges
        kept_challenges: List[np.ndarray] = []
        kept_predicted: List[np.ndarray] = []
        kept_digests: List[str] = []
        batch_seen: Set[str] = set()
        for _ in range(32):
            seed = derive_generator(self._seed, "service", chip_id, state.nonce)
            state.nonce += 1
            challenges, predicted = selector.select(n_needed, seed)
            for row, bit, digest in zip(
                challenges, predicted, challenge_digests(challenges)
            ):
                if digest in state.issued or digest in batch_seen:
                    continue
                batch_seen.add(digest)
                kept_challenges.append(row)
                kept_predicted.append(bit)
                kept_digests.append(digest)
            if len(kept_challenges) >= n_needed:
                return (
                    np.stack(kept_challenges[:n_needed]),
                    np.asarray(kept_predicted[:n_needed], dtype=np.int8),
                    tuple(kept_digests[:n_needed]),
                )
        raise RuntimeError(
            f"could not collect {n_needed} never-issued challenges for "
            f"{chip_id!r}; the selectable stable space is effectively spent"
        )

    def _read(
        self,
        responder: Responder,
        challenges: np.ndarray,
        condition: OperatingCondition,
        rung: int,
    ) -> np.ndarray:
        """One device-read attempt (k-shot majority on degraded rungs)."""
        read_index = self._reads
        self._reads += 1
        if self._faults is not None:
            self._faults.check(Site.SERVICE_READ, read_index)
        if rung >= 1:
            return majority_vote_responses(
                lambda batch: responder.xor_response(batch, condition),
                challenges,
                self.config.majority_votes,
            )
        return np.asarray(responder.xor_response(challenges, condition))

    def _score(
        self, session: _Session, n_mismatches: Optional[int] = None
    ) -> ServiceResult:
        """Score one completed session and apply its state transitions.

        *n_mismatches* is passed by the batched path, which counts
        mismatches for the whole batch in one packed popcount pass; the
        count is identical to the dense comparison here.
        """
        request = session.request
        chip_id = session.chip_id
        state = session.state
        rung = session.rung
        attempts = session.attempts
        spent = session.spent
        challenges = session.challenges
        predicted = session.predicted
        digests = session.digests
        responses = session.responses
        condition = session.condition
        start = session.start
        if n_mismatches is None:
            n_mismatches = int((responses != predicted).sum())
        approved = n_mismatches <= self.config.tolerance
        state.breaker.record_success()
        if approved:
            state.limiter.record_approved()
        else:
            state.limiter.record_rejected()
        new_rung = state.drift.observe(approved)
        if new_rung != rung:
            outcome = (
                AuthOutcome.RUNG_ESCALATED if new_rung > rung
                else AuthOutcome.RUNG_RECOVERED
            )
            self._emit(request, chip_id, outcome, start=start, rung=new_rung,
                       state=state,
                       detail=f"rolling FRR moved rung {rung} -> {new_rung}")
            if (
                new_rung == MAX_RUNG
                and state.drift.flagged_for_retightening
                and not state.retighten_announced
            ):
                state.retighten_announced = True
                self._emit(
                    request, chip_id, AuthOutcome.RETIGHTEN_FLAGGED,
                    start=start, rung=new_rung, state=state,
                    detail=(
                        "chip flagged for threshold re-tightening "
                        f"(beta0 x{self.config.retighten_beta0}, "
                        f"beta1 x{self.config.retighten_beta1})"
                    ),
                )
        auth = AuthResult(
            approved=approved,
            n_challenges=len(challenges),
            n_mismatches=n_mismatches,
            tolerance=self.config.tolerance,
            condition=condition,
            attempts=attempts,
        )
        decision = AuthOutcome.APPROVED if approved else AuthOutcome.REJECTED
        self._emit(request, chip_id, decision, start=start, rung=rung,
                   attempt=attempts, state=state, digests=digests,
                   n_challenges=len(challenges), n_mismatches=n_mismatches,
                   challenges_spent=len(challenges), condition=str(condition))
        return ServiceResult(
            request=request, chip_id=chip_id, outcome=decision, rung=rung,
            attempts=attempts, challenges_spent=spent,
            latency=self._clock() - start, auth=auth,
        )

    def _emit(
        self,
        request: int,
        chip_id: Optional[str],
        outcome: AuthOutcome,
        *,
        start: float,
        rung: int = 0,
        attempt: int = 0,
        state: Optional[_ChipState] = None,
        detail: str = "",
        digests: Tuple[str, ...] = (),
        n_challenges: int = 0,
        n_mismatches: Optional[int] = None,
        challenges_spent: int = 0,
        condition: str = "",
    ) -> AuthEvent:
        event = AuthEvent(
            seq=-1,  # assigned at append (or at batch flush)
            request=request,
            chip_id=chip_id,
            outcome=outcome,
            rung=rung,
            attempt=attempt,
            n_challenges=n_challenges,
            n_mismatches=n_mismatches,
            challenges_spent=challenges_spent,
            condition=condition,
            budget_remaining=(
                state.budget.remaining if state is not None else None
            ),
            breaker_state=(
                state.breaker.state.value if state is not None else ""
            ),
            latency=self._clock() - start,
            detail=detail,
            digests=digests,
        )
        sink = getattr(self._emit_local, "sink", None)
        if sink is not None:
            sink.append(event)
            return event
        with self._audit_lock:
            event = dataclasses.replace(event, seq=len(self.audit))
            return self.audit.append(event)

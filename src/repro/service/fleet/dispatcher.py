"""The sharded identification front end: coalesce, dispatch, merge, degrade.

:class:`ShardDispatcher` is the single entry point of the fleet.  It
owns the shared-memory segments, keeps them in sync with the server's
mutation journal (content-only changes are written in place, membership
changes re-partition), coalesces concurrent ``identify`` /
``identify_many`` calls into one packed XOR + popcount pass per shard,
and merges per-shard winners deterministically -- bit-identical to the
single-process :meth:`AuthenticationServer.identify_many` when every
shard answers.

Robustness contract:

* **bounded queues** -- a batch (or the :meth:`submit` buffer) larger
  than ``max_pending`` raises a typed :class:`OverloadError`; load is
  shed explicitly and audibly (``OVERLOAD_SHED`` event), never dropped;
* **per-request deadlines** -- a shard that misses ``request_timeout``
  is uncovered for that request and handed to the supervisor, which
  kills hung workers and respawns dead ones behind exponential backoff;
* **degraded serving** -- with shards down, surviving shards still
  answer; every result carries ``coverage`` (searched active rows /
  total active rows) and the batch is flagged with a structured
  ``DEGRADED_SERVE`` event.  A degraded answer can miss the true
  identity (it may live on the dead shard) but can never name a wrong
  one: cross-identity agreement sits near 0.5, far under any sane
  threshold;
* **stale-epoch rejection** -- replies echo the segment epoch they
  scored against; a mismatch is discarded (``EPOCH_MISMATCH``), not
  merged.
"""

from __future__ import annotations

import dataclasses
import queue as queue_module
import threading
import time
import uuid
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.authentication import NOMINAL_CONDITION, OperatingCondition
from repro.core.codebook import pack_responses
from repro.core.server import AuthenticationServer, UnknownChipError
from repro.faults import FaultPlan
from repro.service.fleet.config import FleetConfig
from repro.service.fleet.events import FleetLog, FleetOutcome
from repro.service.fleet.scoring import shard_best, shard_distances
from repro.service.fleet.shm import ShardSegment, ShardSpec
from repro.service.fleet.supervisor import ShardState, ShardSupervisor

__all__ = ["OverloadError", "FleetIdentificationResult", "ShardDispatcher"]


class OverloadError(RuntimeError):
    """The bounded request queue is full; the request was shed, not dropped.

    Carries enough context for the caller to back off intelligently.
    """

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"fleet overloaded: {pending} pending requests at the "
            f"configured bound of {limit}; request refused"
        )
        self.pending = pending
        self.limit = limit


@dataclasses.dataclass(frozen=True)
class FleetIdentificationResult:
    """One identification answered by the shard fleet.

    ``chip_id`` / ``match_fraction`` / ``scores`` carry exactly the
    single-process :class:`~repro.core.server.IdentificationResult`
    semantics (and identical values at full coverage).  ``coverage``
    is the fraction of *active* codebook rows actually searched --
    ``1.0`` on a healthy fleet; below that the answer is best-effort
    over the surviving shards and ``uncovered_shards`` names the holes.
    """

    chip_id: Optional[str]
    match_fraction: float
    coverage: float = 1.0
    scores: Optional[Dict[str, float]] = None
    uncovered_shards: Tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        """Whether any active rows went unsearched."""
        return self.coverage < 1.0


#: One shard's contribution to a request batch.
_ShardPayload = Tuple[Optional[np.ndarray], Optional[np.ndarray],
                      Optional[np.ndarray]]


class ShardDispatcher:
    """Supervised shard-pool front end over one server's codebook.

    Parameters
    ----------
    server:
        The :class:`AuthenticationServer` whose enrollment database and
        mutation journal back the fleet.
    config:
        :class:`FleetConfig` geometry and robustness knobs.
    seed:
        Codebook selection seed (must match the codebook the comparison
        plane uses, exactly as in ``server.codebook``).
    faults:
        Optional :class:`FaultPlan`, shipped into every worker; consult
        sites ``SHARD_ATTACH`` / ``SHARD_HEARTBEAT`` / ``SHARD_SCORE``.
    log:
        Optional :class:`FleetLog` to append supervision events to.
    """

    def __init__(
        self,
        server: AuthenticationServer,
        config: Optional[FleetConfig] = None,
        *,
        seed: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        log: Optional[FleetLog] = None,
    ) -> None:
        self.config = config or FleetConfig()
        self.log = log if log is not None else FleetLog()
        self._server = server
        self._seed = seed
        self._faults = faults
        self._lock = threading.RLock()
        self._pending: List[Tuple[object, Optional[OperatingCondition]]] = []
        self._req_seq = 0
        self._closed = False
        #: Packed scoring passes dispatched across the fleet (one per
        #: coalesced batch, not one per request) -- the counter the
        #: front-end coalescing regression test pins.
        self.score_passes = 0

        self._book = self._synced_book()
        if not len(self._book):
            raise UnknownChipError(
                "cannot shard an empty codebook: no identities enrolled"
            )
        self._ids: List[str] = []
        self._bounds: List[Tuple[int, int]] = []
        self._segments: List[ShardSegment] = []
        self._shard_active: List[np.ndarray] = []
        self._epoch = 0

        self._supervisor: Optional[ShardSupervisor] = None
        self._reply_queue = None
        specs = self._build_segments()
        if not self.config.inline:
            import multiprocessing

            ctx = multiprocessing.get_context(self.config.start_method)
            self._reply_queue = ctx.Queue()
            self._supervisor = ShardSupervisor(
                specs, self._reply_queue, self.config, self.log,
                faults=self._faults, context=ctx,
            )
            self._supervisor.start()
            self._await_up()

    # ------------------------------------------------------------------
    # Context manager / shutdown
    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop workers, unmap and destroy every segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.stop()
        if self._reply_queue is not None:
            self._reply_queue.close()
            self._reply_queue.cancel_join_thread()
        for segment in self._segments:
            segment.close()
            segment.unlink()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.config.n_shards

    @property
    def epoch(self) -> int:
        """Journal epoch the segments currently reflect."""
        return self._epoch

    def shard_states(self) -> Dict[int, str]:
        """``shard index -> supervision state`` (inline fleets: all up)."""
        if self._supervisor is None:
            return {i: ShardState.UP.value for i in range(self.n_shards)}
        return self._supervisor.states()

    def revive(self) -> List[int]:
        """Respawn DOWN shards (operator action); returns their indices."""
        if self._supervisor is None:
            return []
        with self._lock:
            revived = self._supervisor.revive()
            if revived:
                self._await_up()
            return revived

    def status(self) -> Dict[str, object]:
        """JSON-ready fleet snapshot for reports and the CLI."""
        total = sum(int(mask.sum()) for mask in self._shard_active)
        return {
            "n_shards": self.n_shards,
            "inline": self.config.inline,
            "epoch": self._epoch,
            "identities": len(self._ids),
            "active_rows": total,
            "shard_states": self.shard_states(),
            "events": self.log.outcome_counts(),
            "min_coverage": self.log.min_coverage(),
        }

    # ------------------------------------------------------------------
    # Layout and refresh
    # ------------------------------------------------------------------
    def _synced_book(self):
        book = self._server.codebook(self.config.n_challenges, seed=self._seed)
        if book.last_sync_pending:
            # The fleet serves from materialized bytes only; drain any
            # deferred-policy backlog before exporting the matrix.
            self._server.sync_codebooks(limit=None)
        return book

    def _segment_name(self, shard_index: int) -> str:
        return f"repro-fleet-{uuid.uuid4().hex[:12]}-s{shard_index}"

    def _build_segments(self) -> List[ShardSpec]:
        """Partition the synced codebook into fresh shm segments."""
        book = self._book
        epoch = self._server.epoch
        active = book.active_mask
        matrix = book.packed_matrix
        self._ids = book.ids
        self._bounds = book.shard_bounds(self.config.n_shards)
        self._shard_active = [
            np.array(active[start:stop], dtype=bool)
            for start, stop in self._bounds
        ]
        specs: List[ShardSpec] = []
        segments: List[ShardSegment] = []
        for index, (start, stop) in enumerate(self._bounds):
            spec = ShardSpec(
                shard_index=index,
                name=self._segment_name(index),
                start=start,
                stop=stop,
                n_bytes=book.n_bytes,
                n_challenges=book.n_challenges,
                epoch=epoch,
            )
            segments.append(
                ShardSegment.create(spec, matrix[start:stop],
                                    active[start:stop])
            )
            specs.append(spec)
        self._segments = segments
        self._epoch = epoch
        return specs

    def refresh(self) -> bool:
        """Fold journalled mutations into the segments; True if work ran.

        Content-only changes (retighten) are rewritten in place into
        the dirty shards; membership changes (register, revoke
        compaction) re-partition into fresh segments and re-attach
        every live worker.  Serialized against dispatch by the
        front-end lock, so workers never score torn bytes.
        """
        with self._lock:
            if self._server.epoch == self._epoch:
                return False
            dirty = self._server.dirty_since(self._epoch)
            self._book = self._synced_book()
            epoch = self._server.epoch
            if not len(self._book):
                # Total revocation compacted the book away; the same
                # typed refusal the single-process planes give.
                raise UnknownChipError(
                    "no active identities enrolled; the fleet cannot serve"
                )
            if self._book.ids != self._ids:
                self._relayout(epoch)
                return True
            active = self._book.active_mask
            matrix = self._book.packed_matrix
            if dirty is None:
                dirty_shards: Set[int] = set(range(self.n_shards))
            else:
                dirty_shards = set()
                for chip_id in dirty:
                    try:
                        position = self._book.row_position(chip_id)
                    except KeyError:
                        continue
                    dirty_shards.add(self._shard_of(position))
            for index, segment in enumerate(self._segments):
                start, stop = self._bounds[index]
                if index in dirty_shards:
                    segment.write(matrix[start:stop], active[start:stop],
                                  epoch)
                    self._shard_active[index] = np.array(
                        active[start:stop], dtype=bool
                    )
                else:
                    # Clean shards must echo the new epoch too, or their
                    # (perfectly valid) replies would read as stale.
                    segment.set_epoch(epoch)
            if self._supervisor is not None:
                self._supervisor.reattach(
                    [segment.spec for segment in self._segments]
                )
                self._await_up()
            self._epoch = epoch
            self.log.record(
                FleetOutcome.SHARD_REFRESHED,
                detail=(
                    f"epoch {epoch}: rewrote shard(s) "
                    f"{sorted(dirty_shards)} in place"
                ),
            )
            return True

    def _relayout(self, epoch: int) -> None:
        old_segments = self._segments
        specs = self._build_segments()
        self._epoch = epoch
        for segment in self._segments:
            segment.set_epoch(epoch)
        specs = [segment.spec for segment in self._segments]
        if self._supervisor is not None:
            self._supervisor.reattach(specs)
            self._await_up()
        for segment in old_segments:
            segment.close()
            segment.unlink()
        self.log.record(
            FleetOutcome.SHARD_RELAYOUT,
            detail=(
                f"epoch {epoch}: membership changed, repartitioned "
                f"{len(self._ids)} identities into {self.n_shards} shards"
            ),
        )

    def _shard_of(self, position: int) -> int:
        for index, (start, stop) in enumerate(self._bounds):
            if start <= position < stop:
                return index
        raise IndexError(f"row {position} outside every shard bound")

    def _await_up(self, budget: Optional[float] = None) -> None:
        """Drain attach acks until every non-DOWN shard is serving."""
        if self._supervisor is None:
            return
        budget = (
            max(2.0, self.config.request_timeout) if budget is None else budget
        )
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            starting = [
                h for h in self._supervisor.handles
                if h.state is ShardState.STARTING
            ]
            if not starting:
                return
            self._drain_replies(timeout=0.05)
            self._supervisor.ensure_alive()

    def _drain_replies(self, timeout: float = 0.0) -> List[tuple]:
        """Pull replies, routing acks to the supervisor; returns results."""
        results = []
        block = timeout > 0
        while True:
            try:
                message = self._reply_queue.get(block=block, timeout=timeout)
            except (queue_module.Empty, OSError, ValueError):
                return results
            if message[0] == "attached":
                _, worker_index, _shard, generation, _epoch = message
                self._supervisor.mark_attached(worker_index, generation)
            else:
                results.append(message)
            block = False

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def identify(self, responder, **kwargs) -> FleetIdentificationResult:
        """Identify one device (a coalesced batch of one)."""
        return self.identify_many([responder], **kwargs)[0]

    def submit(
        self, responder, condition: Optional[OperatingCondition] = None
    ) -> int:
        """Queue a device for the next coalesced pass; returns its slot.

        *condition* optionally pins the operating condition this
        device will be read at when the buffer is flushed (``None``
        defers to :meth:`flush`'s batch-wide default) -- concurrent
        clients observed at different V/T points can share one pass.

        Raises :class:`OverloadError` (and records ``OVERLOAD_SHED``)
        when the bounded buffer is full -- the caller must back off;
        nothing is ever silently discarded.
        """
        with self._lock:
            if len(self._pending) >= self.config.max_pending:
                self.log.record(
                    FleetOutcome.OVERLOAD_SHED,
                    detail=(
                        f"submit refused at {len(self._pending)} pending "
                        f"(bound {self.config.max_pending})"
                    ),
                )
                raise OverloadError(len(self._pending),
                                    self.config.max_pending)
            self._pending.append((responder, condition))
            return len(self._pending) - 1

    def flush(
        self,
        *,
        condition: OperatingCondition = NOMINAL_CONDITION,
        **kwargs,
    ) -> List[FleetIdentificationResult]:
        """Serve every queued device in one pass (slot-ordered results)."""
        with self._lock:
            batch, self._pending = self._pending, []
            if not batch:
                return []
            return self.identify_many(
                [responder for responder, _ in batch],
                condition=condition,
                conditions=[
                    condition if pinned is None else pinned
                    for _, pinned in batch
                ],
                **kwargs,
            )

    def identify_many(
        self,
        responders: Sequence[object],
        *,
        condition: OperatingCondition = NOMINAL_CONDITION,
        conditions: Optional[Sequence[OperatingCondition]] = None,
        min_match_fraction: Optional[float] = None,
        return_scores: bool = False,
    ) -> List[FleetIdentificationResult]:
        """Batched 1:N identification across the shard fleet.

        One stacked device read per responder, one packed scoring pass
        per shard for the whole batch, one deterministic merge.  At
        full coverage the ``(chip_id, match_fraction, scores)`` triple
        is bit-identical to ``server.identify_many``.  *conditions*
        optionally gives each responder its own operating condition
        (overriding the batch-wide *condition* per item).
        """
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        threshold = (
            self.config.min_match_fraction
            if min_match_fraction is None else min_match_fraction
        )
        with self._lock:
            if not responders:
                return []
            if len(responders) > self.config.max_pending:
                self.log.record(
                    FleetOutcome.OVERLOAD_SHED,
                    detail=(
                        f"batch of {len(responders)} exceeds the bound "
                        f"of {self.config.max_pending}"
                    ),
                )
                raise OverloadError(len(responders), self.config.max_pending)
            if conditions is None:
                conditions = [condition] * len(responders)
            elif len(conditions) != len(responders):
                raise ValueError(
                    f"{len(responders)} responders but "
                    f"{len(conditions)} conditions"
                )
            self.refresh()
            book = self._book
            stacked = book.stacked_challenges
            responses = np.stack(
                [
                    np.asarray(r.xor_response(stacked, cond))
                    for r, cond in zip(responders, conditions)
                ]
            )
            packed = pack_responses(
                responses.reshape(
                    len(responders), len(self._ids), book.n_challenges
                )
            )
            payloads, uncovered = self._dispatch(packed, return_scores)
            return self._merge(
                payloads, uncovered, len(responders), threshold,
                return_scores,
            )

    def _dispatch(
        self, packed: np.ndarray, want_scores: bool
    ) -> Tuple[Dict[int, _ShardPayload], Tuple[int, ...]]:
        """Score the packed batch on every shard; returns payloads + holes."""
        self.score_passes += 1
        if self.config.inline:
            payloads: Dict[int, _ShardPayload] = {}
            for index, segment in enumerate(self._segments):
                start, stop = self._bounds[index]
                distances = shard_distances(
                    packed[:, start:stop, :], segment.packed
                )
                best = shard_best(
                    distances, segment.active, self.config.n_challenges
                )
                rows, bests = (None, None) if best is None else best
                payloads[index] = (
                    rows, bests, distances if want_scores else None
                )
            return payloads, ()

        self._drain_replies()
        self._supervisor.ensure_alive()
        # Give STARTING shards (fresh spawns, post-crash respawns) their
        # attach window before declaring them uncovered -- this is what
        # bounds recovery: the request after a crash blocks briefly and
        # then serves at full coverage instead of degrading forever.
        self._await_up()
        req_id = self._req_seq
        self._req_seq += 1
        up = self._supervisor.up_handles()
        for handle in up:
            start, stop = self._bounds[handle.index]
            handle.request_queue.put(
                ("score", req_id,
                 np.ascontiguousarray(packed[:, start:stop, :]), want_scores)
            )
        expected = {handle.index for handle in up}
        payloads = {}
        deadline = time.monotonic() + self.config.request_timeout
        while expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            for message in self._drain_replies(
                timeout=min(0.05, remaining)
            ):
                (_, reply_req, shard, _generation, epoch, rows, bests,
                 distances) = message
                if reply_req != req_id or shard not in expected:
                    continue  # late reply from a previous request
                if epoch != self._epoch:
                    self.log.record(
                        FleetOutcome.EPOCH_MISMATCH, shard=shard,
                        detail=(
                            f"reply scored at epoch {epoch}, fleet is at "
                            f"{self._epoch}; discarded"
                        ),
                    )
                    expected.discard(shard)
                    continue
                payloads[shard] = (rows, bests, distances)
                expected.discard(shard)
        if expected:
            # Deadline missed: the shard is uncovered for this request;
            # let the supervisor decide whether its worker crashed or
            # hung (and restart it behind the backoff policy).
            self._supervisor.ensure_alive()
        uncovered = tuple(sorted(set(range(self.n_shards)) - set(payloads)))
        return payloads, uncovered

    def _merge(
        self,
        payloads: Dict[int, _ShardPayload],
        uncovered: Tuple[int, ...],
        batch_size: int,
        threshold: float,
        want_scores: bool,
    ) -> List[FleetIdentificationResult]:
        n = self.config.n_challenges
        best_distance = np.full(batch_size, n + 2, dtype=np.int64)
        best_row = np.full(batch_size, -1, dtype=np.int64)
        # Ascending shard order + strict improvement keeps the earliest
        # (lowest global row = lowest chip id) winner on equal distances,
        # exactly the single-process argmax tie-break.
        for shard in sorted(payloads):
            rows, bests, _ = payloads[shard]
            if rows is None:
                continue
            start = self._bounds[shard][0]
            better = bests < best_distance
            best_distance[better] = bests[better]
            best_row[better] = start + rows[better]

        total_active = sum(int(mask.sum()) for mask in self._shard_active)
        covered_active = sum(
            int(self._shard_active[s].sum()) for s in payloads
        )
        coverage = (
            covered_active / total_active if total_active else 1.0
        )
        if coverage < 1.0:
            self.log.record(
                FleetOutcome.DEGRADED_SERVE,
                coverage=coverage,
                detail=(
                    f"shards {list(uncovered)} uncovered; answered from "
                    f"{covered_active}/{total_active} active rows"
                ),
            )

        score_maps: List[Dict[str, float]] = []
        if want_scores:
            per_shard: List[Tuple[int, np.ndarray, np.ndarray]] = []
            for shard in sorted(payloads):
                distances = payloads[shard][2]
                if distances is None or distances.shape[1] == 0:
                    continue
                fractions = (n - distances) / float(n)
                per_shard.append(
                    (self._bounds[shard][0], fractions,
                     self._shard_active[shard])
                )
            for q in range(batch_size):
                entry: Dict[str, float] = {}
                for start, fractions, mask in per_shard:
                    for j in np.flatnonzero(mask):
                        entry[self._ids[start + j]] = float(fractions[q, j])
                score_maps.append(entry)

        results: List[FleetIdentificationResult] = []
        for q in range(batch_size):
            scores = score_maps[q] if want_scores else None
            if best_distance[q] > n:
                # No active row among the covered shards: the
                # single-process all-revoked degenerate result.
                results.append(
                    FleetIdentificationResult(
                        chip_id=None, match_fraction=0.0, coverage=coverage,
                        scores={} if want_scores and scores is None
                        else scores,
                        uncovered_shards=uncovered,
                    )
                )
                continue
            fraction = (n - int(best_distance[q])) / float(n)
            chip_id = (
                self._ids[int(best_row[q])] if fraction >= threshold else None
            )
            results.append(
                FleetIdentificationResult(
                    chip_id=chip_id, match_fraction=fraction,
                    coverage=coverage, scores=scores,
                    uncovered_shards=uncovered,
                )
            )
        return results

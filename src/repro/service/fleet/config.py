"""Configuration of the supervised shard-pool runtime."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.engine.runtime import RetryPolicy
from repro.utils.validation import check_positive_int

__all__ = ["FleetConfig", "DEFAULT_RESTART_POLICY"]

#: Restart backoff for crashed/hung shard workers: quick first respawn,
#: exponential afterwards, deterministic jitter keyed by shard index so
#: two shards never thunder-herd their restarts onto the same instant.
DEFAULT_RESTART_POLICY = RetryPolicy(
    max_attempts=5, base_delay=0.05, backoff=2.0, max_delay=2.0, jitter=0.1
)


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Shape of one sharded identification fleet.

    Attributes
    ----------
    n_shards:
        Worker processes / shared-memory segments the packed codebook
        is partitioned into.  More shards than codebook rows is legal
        (trailing shards are empty).
    n_challenges:
        Identification block length per identity (the codebook key).
    min_match_fraction:
        Default identification threshold, exactly as in
        :meth:`~repro.core.server.AuthenticationServer.identify_many`.
    inline:
        ``True`` executes every shard's scoring pass in the calling
        process over the same shared-memory segments, with no worker
        processes or supervision -- the data plane alone, byte for byte
        the multiprocess path's computation.  Used by the bit-identity
        tests and the lifecycle simulator's sharded mode.
    max_pending:
        Bounded request queue: the most responders a batch (or the
        coalescing :meth:`~ShardDispatcher.submit` buffer) may hold.
        One more raises a typed ``OverloadError`` -- load is shed
        explicitly, never dropped silently.
    request_timeout:
        Per-request deadline (seconds): a shard that has not replied by
        then is treated as uncovered for this request and handed to the
        supervisor for liveness checking.
    heartbeat_interval:
        How often an idle worker refreshes its heartbeat slot.
    heartbeat_timeout:
        Heartbeat staleness past which an alive-but-silent worker is
        declared hung and killed.
    max_restarts:
        Restart budget per shard; once exhausted the shard is degraded
        to DOWN (partial-coverage serving) until revived.
    restart_policy:
        :class:`~repro.engine.runtime.RetryPolicy` supplying the
        exponential-backoff + deterministic-jitter delay between a
        worker's death and its respawn.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    """

    n_shards: int = 2
    n_challenges: int = 64
    min_match_fraction: float = 0.95
    inline: bool = False
    max_pending: int = 64
    request_timeout: float = 5.0
    heartbeat_interval: float = 0.05
    heartbeat_timeout: float = 1.0
    max_restarts: int = 5
    restart_policy: RetryPolicy = DEFAULT_RESTART_POLICY
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive_int(self.n_shards, "n_shards")
        check_positive_int(self.n_challenges, "n_challenges")
        check_positive_int(self.max_pending, "max_pending")
        if not 0.0 <= self.min_match_fraction <= 1.0:
            raise ValueError(
                "min_match_fraction must lie in [0, 1], got "
                f"{self.min_match_fraction}"
            )
        for name in ("request_timeout", "heartbeat_interval",
                     "heartbeat_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got "
                                 f"{getattr(self, name)}")
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )

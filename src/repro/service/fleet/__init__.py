"""Supervised sharded identification fleet.

Shared-memory codebook shards scored by supervised worker processes,
fronted by a coalescing dispatcher whose merged results are
bit-identical to single-process ``identify_many`` at full coverage and
explicitly degraded (``coverage < 1.0``) when shards are down.
"""

from repro.service.fleet.config import DEFAULT_RESTART_POLICY, FleetConfig
from repro.service.fleet.dispatcher import (
    FleetIdentificationResult,
    OverloadError,
    ShardDispatcher,
)
from repro.service.fleet.events import FleetEvent, FleetLog, FleetOutcome
from repro.service.fleet.shm import ShardSegment, ShardSpec
from repro.service.fleet.supervisor import (
    ShardState,
    ShardSupervisor,
    WorkerHandle,
)
from repro.service.fleet.worker import WORKER_EXIT_INJECTED, shard_worker_main

__all__ = [
    "DEFAULT_RESTART_POLICY",
    "FleetConfig",
    "FleetIdentificationResult",
    "OverloadError",
    "ShardDispatcher",
    "FleetEvent",
    "FleetLog",
    "FleetOutcome",
    "ShardSegment",
    "ShardSpec",
    "ShardState",
    "ShardSupervisor",
    "WorkerHandle",
    "WORKER_EXIT_INJECTED",
    "shard_worker_main",
]

"""Shared-memory codebook shards: zero-copy slices workers score in place.

One :class:`ShardSegment` holds a contiguous row slice of the packed
``(N, n_bytes)`` codebook matrix plus its tombstone mask and the epoch
it was written at, laid out in a single
:class:`multiprocessing.shared_memory.SharedMemory` block::

    offset 0   int64  epoch     -- journal epoch the bytes reflect
    offset 8   int32  n_rows    -- rows in this shard (layout check)
    offset 12  int32  n_bytes   -- packed bytes per row (layout check)
    offset 16  uint8[n_rows]          active mask (1 = serveable)
    offset 16+n_rows uint8[n_rows * n_bytes]  packed predictions

The dispatcher owns the segments (creates, rewrites, unlinks); workers
attach read-only by name and echo the header epoch in every reply, so a
reply scored against stale bytes is detectable at merge time.  Rewrites
happen only between dispatches (the dispatcher serializes refresh and
scoring), so workers never observe a torn row.
"""

from __future__ import annotations

import dataclasses
import struct
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShardSpec", "ShardSegment", "HEADER_BYTES"]

#: epoch (int64) + n_rows (int32) + n_bytes (int32).
HEADER_BYTES = 16
_HEADER = struct.Struct("<qii")


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """Picklable description of one shard segment (travels to workers).

    Attributes
    ----------
    shard_index:
        Position of this shard in the fleet's contiguous partition.
    name:
        Shared-memory segment name to attach.
    start / stop:
        Global codebook row bounds ``[start, stop)`` the shard covers;
        ``start`` is what turns a local argmin row back into the global
        (lowest-chip-id tie-break) coordinate.
    n_bytes:
        Packed bytes per row.
    n_challenges:
        Identification block length (for score reconstruction).
    epoch:
        Journal epoch the segment held when this spec was issued;
        replies carrying a different header epoch are stale.
    """

    shard_index: int
    name: str
    start: int
    stop: int
    n_bytes: int
    n_challenges: int
    epoch: int

    @property
    def n_rows(self) -> int:
        return self.stop - self.start

    @property
    def size(self) -> int:
        """Total segment size in bytes (header + mask + matrix)."""
        return HEADER_BYTES + self.n_rows + self.n_rows * self.n_bytes


def _untrack(name: str) -> None:
    """Drop a segment from this process's resource tracker.

    Attaching registers the segment with the *attaching* process's
    tracker, which would try to unlink it again at exit (and warn about
    leaks) even though the dispatcher owns the lifecycle.  Best-effort:
    tracker internals are not a stable API.
    """
    try:  # pragma: no cover - depends on interpreter internals
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class ShardSegment:
    """One mapped shard: header + active mask + packed rows.

    Create with :meth:`create` (owner side: allocates and fills) or
    :meth:`attach` (worker side: maps existing bytes by name).
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: ShardSpec,
                 *, owner: bool) -> None:
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        spec: ShardSpec,
        packed_rows: np.ndarray,
        active: np.ndarray,
    ) -> "ShardSegment":
        """Allocate the segment and write header + rows + mask."""
        # max(size, 1): SharedMemory refuses zero-byte blocks, and an
        # empty shard is legal (more shards than rows).
        shm = shared_memory.SharedMemory(
            name=spec.name, create=True, size=max(spec.size, 1)
        )
        segment = cls(shm, spec, owner=True)
        segment.write(packed_rows, active, spec.epoch)
        return segment

    @classmethod
    def attach(cls, spec: ShardSpec) -> "ShardSegment":
        """Map an existing segment by name; validates the header layout."""
        shm = shared_memory.SharedMemory(name=spec.name)
        _untrack(spec.name)
        segment = cls(shm, spec, owner=False)
        _, n_rows, n_bytes = segment._header()
        if (n_rows, n_bytes) != (spec.n_rows, spec.n_bytes):
            segment.close()
            raise ValueError(
                f"shard {spec.shard_index}: segment {spec.name} holds "
                f"{n_rows}x{n_bytes} rows but the spec says "
                f"{spec.n_rows}x{spec.n_bytes}"
            )
        return segment

    def close(self) -> None:
        """Unmap the segment (both sides); idempotent."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side only); idempotent."""
        if self._owner:
            try:
                # A forked worker's attach-side unregister may have
                # already dropped this name from the (shared) tracker
                # cache; re-register so unlink's own unregister finds
                # it instead of spewing a KeyError in the tracker.
                resource_tracker.register(
                    f"/{self.spec.name}", "shared_memory"
                )
            except Exception:  # pragma: no cover - tracker internals
                pass
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    # ------------------------------------------------------------------
    # Header / views
    # ------------------------------------------------------------------
    def _header(self):
        return _HEADER.unpack_from(self._shm.buf, 0)

    @property
    def epoch(self) -> int:
        """Journal epoch the current bytes reflect."""
        return self._header()[0]

    @property
    def active(self) -> np.ndarray:
        """Bool view of the tombstone mask (1 = row may win argmax)."""
        return np.ndarray(
            (self.spec.n_rows,), dtype=np.bool_,
            buffer=self._shm.buf, offset=HEADER_BYTES,
        )

    @property
    def packed(self) -> np.ndarray:
        """Uint8 view of the packed prediction rows ``(n_rows, n_bytes)``."""
        return np.ndarray(
            (self.spec.n_rows, self.spec.n_bytes), dtype=np.uint8,
            buffer=self._shm.buf, offset=HEADER_BYTES + self.spec.n_rows,
        )

    def set_epoch(self, epoch: int) -> None:
        """Stamp a new epoch without touching rows (content unchanged)."""
        _HEADER.pack_into(
            self._shm.buf, 0, int(epoch), self.spec.n_rows, self.spec.n_bytes
        )
        self.spec = dataclasses.replace(self.spec, epoch=int(epoch))

    def write(
        self, packed_rows: np.ndarray, active: np.ndarray, epoch: int
    ) -> None:
        """Rewrite rows + mask in place and stamp the new epoch.

        Owner-side refresh path; the dispatcher guarantees no scoring
        pass is in flight while this runs.
        """
        packed_rows = np.ascontiguousarray(packed_rows, dtype=np.uint8)
        if packed_rows.shape != (self.spec.n_rows, self.spec.n_bytes):
            raise ValueError(
                f"shard {self.spec.shard_index}: cannot write shape "
                f"{packed_rows.shape} into a "
                f"{(self.spec.n_rows, self.spec.n_bytes)} segment"
            )
        mask = np.ascontiguousarray(active, dtype=np.bool_)
        if mask.shape != (self.spec.n_rows,):
            raise ValueError(
                f"shard {self.spec.shard_index}: active mask shape "
                f"{mask.shape} != ({self.spec.n_rows},)"
            )
        self.active[:] = mask
        self.packed[:] = packed_rows
        _HEADER.pack_into(
            self._shm.buf, 0, int(epoch), self.spec.n_rows, self.spec.n_bytes
        )
        self.spec = dataclasses.replace(self.spec, epoch=int(epoch))

"""Structured supervision events of the sharded identification fleet.

The fleet's robustness claims -- crashes detected, workers restarted,
degraded serving flagged, overload shed instead of silently dropped --
are all *observable* claims.  Every supervision decision is recorded as
one :class:`FleetEvent` in an append-only :class:`FleetLog`, the fleet
counterpart of :class:`repro.service.events.AuditLog`; chaos tests
assert recovery behaviour from the log alone, without trusting the
dispatcher's return values.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["FleetOutcome", "FleetEvent", "FleetLog"]


class FleetOutcome(str, enum.Enum):
    """Event taxonomy of the shard supervisor and dispatcher.

    * ``WORKER_SPAWNED`` -- a shard worker process was started (initial
      spawn or respawn; ``generation`` distinguishes them).
    * ``WORKER_ATTACHED`` -- the worker acknowledged its shared-memory
      attach and is serving.
    * ``WORKER_CRASHED`` -- the supervisor found a worker process dead.
    * ``WORKER_HUNG`` -- the worker process is alive but its heartbeat
      went stale past the configured timeout; it is killed.
    * ``WORKER_RESTARTED`` -- a crashed/hung worker was respawned
      (after the retry policy's backoff delay).
    * ``SHARD_DOWN`` -- a shard exhausted its restart budget and is
      degraded out of the serving set until revived.
    * ``SHARD_RECOVERED`` -- a previously crashed/hung/down shard is
      attached and serving again.
    * ``SHARD_RELAYOUT`` -- a membership change (register/revoke
      compaction) re-partitioned the codebook into fresh segments.
    * ``SHARD_REFRESHED`` -- content-only mutations were written into
      existing segments in place (epoch bump, no re-layout).
    * ``DEGRADED_SERVE`` -- a request batch was answered from a proper
      subset of shards; ``coverage`` carries the active-row fraction
      actually searched.
    * ``EPOCH_MISMATCH`` -- a shard reply carried a stale epoch and was
      discarded rather than merged.
    * ``OVERLOAD_SHED`` -- a request was refused with a typed
      :class:`~repro.service.fleet.dispatcher.OverloadError` because
      the bounded queue was full (never a silent drop).
    """

    WORKER_SPAWNED = "worker-spawned"
    WORKER_ATTACHED = "worker-attached"
    WORKER_CRASHED = "worker-crashed"
    WORKER_HUNG = "worker-hung"
    WORKER_RESTARTED = "worker-restarted"
    SHARD_DOWN = "shard-down"
    SHARD_RECOVERED = "shard-recovered"
    SHARD_RELAYOUT = "shard-relayout"
    SHARD_REFRESHED = "shard-refreshed"
    DEGRADED_SERVE = "degraded-serve"
    EPOCH_MISMATCH = "epoch-mismatch"
    OVERLOAD_SHED = "overload-shed"


@dataclasses.dataclass(frozen=True)
class FleetEvent:
    """One supervision decision.

    Attributes
    ----------
    seq:
        Monotone event sequence number (log order).
    outcome:
        The :class:`FleetOutcome` taxonomy entry.
    shard:
        Shard index the event concerns (``None`` for fleet-wide events).
    generation:
        Worker spawn generation in force when the event fired.
    coverage:
        Active-row coverage fraction, where the event carries one
        (``DEGRADED_SERVE``).
    detail:
        Free-form human-readable context.
    """

    seq: int
    outcome: FleetOutcome
    shard: Optional[int] = None
    generation: int = 0
    coverage: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary (enum flattened to its string value)."""
        payload = dataclasses.asdict(self)
        payload["outcome"] = self.outcome.value
        return payload


class FleetLog:
    """Append-only supervision log with query helpers for tests/reports."""

    def __init__(self) -> None:
        self._events: List[FleetEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FleetEvent]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[FleetEvent, ...]:
        """All events in log order."""
        return tuple(self._events)

    def record(
        self,
        outcome: FleetOutcome,
        *,
        shard: Optional[int] = None,
        generation: int = 0,
        coverage: Optional[float] = None,
        detail: str = "",
    ) -> FleetEvent:
        """Append one event; returns it for call-site chaining."""
        event = FleetEvent(
            seq=len(self._events),
            outcome=outcome,
            shard=shard,
            generation=generation,
            coverage=coverage,
            detail=detail,
        )
        self._events.append(event)
        return event

    def with_outcome(self, outcome: FleetOutcome) -> List[FleetEvent]:
        """Events carrying one outcome."""
        return [e for e in self._events if e.outcome is outcome]

    def outcome_counts(self) -> Dict[str, int]:
        """``outcome value -> count`` over the whole log."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.outcome.value] = counts.get(event.outcome.value, 0) + 1
        return counts

    def min_coverage(self) -> float:
        """Lowest coverage any served batch saw (1.0 if never degraded)."""
        degraded = [
            e.coverage
            for e in self._events
            if e.outcome is FleetOutcome.DEGRADED_SERVE and e.coverage is not None
        ]
        return min(degraded) if degraded else 1.0

"""The shard worker process: attach, heartbeat, score, die honestly.

One worker owns one shard.  Its loop is deliberately tiny -- update the
heartbeat slot, pull a message, score -- because everything around it
is the failure surface under test: injected faults at
:attr:`Site.SHARD_ATTACH` / :attr:`Site.SHARD_HEARTBEAT` /
:attr:`Site.SHARD_SCORE` terminate the *process* (``os._exit``), not
just raise, so the supervisor sees exactly what a real segfault or
OOM-kill looks like: a dead PID mid-query, no reply, no cleanup.

Fault attempt keys are chosen so chaos heals deterministically:

* attach/heartbeat faults key on the worker's **spawn generation** --
  generation 0 crashes, its respawn (generation 1) succeeds;
* score faults key on the dispatcher's **request sequence** -- request
  0 dies whoever serves it, later requests succeed even though the
  respawned process has fresh fault counters.
"""

from __future__ import annotations

import os
import queue
import time
from typing import Optional

import numpy as np

from repro.faults import FaultPlan, InjectedFault, Site
from repro.service.fleet.scoring import shard_best, shard_distances
from repro.service.fleet.shm import ShardSegment, ShardSpec

__all__ = ["shard_worker_main", "WORKER_EXIT_INJECTED"]

#: Exit status of a worker killed by an injected fault (distinguishes
#: chaos deaths from real bugs in test postmortems).
WORKER_EXIT_INJECTED = 3


def _die(exc: InjectedFault) -> None:  # pragma: no cover - exits the process
    """Injected faults kill the worker *process*, exactly like a crash."""
    os._exit(WORKER_EXIT_INJECTED)


def _check(
    faults: Optional[FaultPlan], site: str, index: int, attempt: int
) -> None:
    """Consult the plan; ``hang`` sleeps in place, everything else dies."""
    if faults is None:
        return
    try:
        faults.check(site, index, attempt=attempt)
    except InjectedFault as exc:
        _die(exc)


def shard_worker_main(
    worker_index: int,
    generation: int,
    spec: ShardSpec,
    request_queue,
    reply_queue,
    heartbeat,
    heartbeat_interval: float,
    faults: Optional[FaultPlan] = None,
) -> None:
    """Entry point of one shard worker process.

    Protocol (requests on *request_queue*, replies on *reply_queue*):

    * ``("attach", spec)`` -> re-map a new segment (re-layout), reply
      ``("attached", worker_index, shard_index, generation, epoch)``;
    * ``("score", req_id, packed_queries, want_scores)`` -> reply
      ``("result", req_id, shard_index, generation, epoch, local_rows,
      best_distances, distances_or_None)``;
    * ``("stop",)`` -> clean exit.

    The heartbeat slot is refreshed every loop iteration (idle loops
    time out of the queue read after *heartbeat_interval*), so a stall
    anywhere -- injected or real -- goes silent within one interval.
    """
    segment: Optional[ShardSegment] = None
    try:
        heartbeat[worker_index] = time.monotonic()
        _check(faults, Site.SHARD_ATTACH, spec.shard_index, generation)
        segment = ShardSegment.attach(spec)
        reply_queue.put(
            ("attached", worker_index, spec.shard_index, generation,
             segment.epoch)
        )
        while True:
            heartbeat[worker_index] = time.monotonic()
            _check(faults, Site.SHARD_HEARTBEAT, spec.shard_index, generation)
            try:
                message = request_queue.get(timeout=heartbeat_interval)
            except queue.Empty:
                continue
            kind = message[0]
            if kind == "stop":
                return
            if kind == "attach":
                spec = message[1]
                _check(faults, Site.SHARD_ATTACH, spec.shard_index, generation)
                segment.close()
                segment = ShardSegment.attach(spec)
                reply_queue.put(
                    ("attached", worker_index, spec.shard_index, generation,
                     segment.epoch)
                )
                continue
            if kind == "score":
                _, req_id, packed_queries, want_scores = message
                _check(faults, Site.SHARD_SCORE, spec.shard_index, req_id)
                distances = shard_distances(packed_queries, segment.packed)
                active = np.array(segment.active, dtype=bool)
                best = shard_best(distances, active, spec.n_challenges)
                local_rows, best_distances = (
                    (None, None) if best is None else best
                )
                reply_queue.put(
                    ("result", req_id, spec.shard_index, generation,
                     segment.epoch, local_rows, best_distances,
                     distances if want_scores else None)
                )
    finally:
        if segment is not None:
            segment.close()

"""The shard data plane: pure scoring functions shared by every execution mode.

Worker processes and the dispatcher's inline mode call exactly these
functions, so the bit-identity guarantee ("sharded == single-process")
is a property of *one* code path, verified once.

The math mirrors :meth:`IdentificationCodebook.match_many` +
:meth:`AuthenticationServer._best_match` exactly:

* distances are integer Hamming counts from the same packed XOR +
  popcount kernel dispatch (:func:`repro.core.codebook._packed_distances`
  with the row-aligned request-grid shape), so equal match fractions
  are equal integers;
* tombstoned rows are masked with a sentinel distance
  ``n_challenges + 1`` -- strictly worse than any real row, exactly as
  the single-process path's ``-1.0`` masked fraction;
* per-shard winners are first-occurrence argmins, and shards are
  contiguous ascending row slices, so merging by (distance, shard
  index) reproduces the global first-occurrence argmax: highest score,
  then lexicographically lowest chip id.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.codebook import _packed_distances

__all__ = ["shard_distances", "shard_best", "sentinel_distance"]


def sentinel_distance(n_challenges: int) -> int:
    """Masked-row distance: loses to every real row (distance <= n)."""
    return n_challenges + 1


def shard_distances(
    packed_queries: np.ndarray, packed_rows: np.ndarray
) -> np.ndarray:
    """Row-aligned Hamming distances ``(n_queries, n_rows)``.

    *packed_queries* is the ``(n_queries, n_rows, n_bytes)`` slice of
    the batch's packed responses covering this shard's rows;
    *packed_rows* is the shard's ``(n_rows, n_bytes)`` packed matrix.
    Same kernel dispatch as the single-process ``match_many`` pass, so
    the integers are identical on any backend.
    """
    queries = np.asarray(packed_queries, dtype=np.uint8)
    rows = np.asarray(packed_rows, dtype=np.uint8)
    if rows.shape[0] == 0:
        return np.zeros((queries.shape[0], 0), dtype=np.int64)
    return _packed_distances(queries, rows[None, :, :], use_lut=False)


def shard_best(
    distances: np.ndarray,
    active: np.ndarray,
    n_challenges: int,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Per-query winner of one shard: ``(local_rows, best_distances)``.

    Tombstoned rows are sentinel-masked before the argmin, so they can
    only "win" when the shard has no active row at all -- in which case
    the shard contributes nothing and this returns ``None`` (the merge
    equivalent of the single-process all-revoked short-circuit).
    ``argmin`` keeps the first occurrence, i.e. the lowest local row =
    lowest chip id within the shard.
    """
    active = np.asarray(active, dtype=bool)
    if distances.shape[1] == 0 or not active.any():
        return None
    masked = np.where(active, distances, sentinel_distance(n_challenges))
    local_rows = masked.argmin(axis=1)
    best = masked[np.arange(masked.shape[0]), local_rows]
    return local_rows.astype(np.int64), best.astype(np.int64)

"""Heartbeat-based supervision of the shard worker pool.

The supervisor owns process lifecycles, nothing else: it spawns one
worker per shard, watches PID liveness and the shared heartbeat array,
kills hung workers, respawns dead ones behind the
:class:`~repro.engine.runtime.RetryPolicy`'s exponential backoff with
deterministic jitter (keyed by shard index), and degrades a shard to
``DOWN`` once its restart budget is spent.  The dispatcher drives it
(``ensure_alive`` before/after every request batch) and feeds it attach
acknowledgements; the supervisor never reads the reply queue itself.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import enum
import time
from typing import Dict, List, Optional

from repro.engine.runtime import RetryPolicy
from repro.faults import FaultPlan
from repro.service.fleet.config import FleetConfig
from repro.service.fleet.events import FleetLog, FleetOutcome
from repro.service.fleet.shm import ShardSpec
from repro.service.fleet.worker import shard_worker_main

__all__ = ["ShardState", "WorkerHandle", "ShardSupervisor"]


class ShardState(str, enum.Enum):
    """Supervision state machine of one shard.

    ``STARTING -> UP`` on the worker's attach acknowledgement;
    ``UP -> STARTING`` through a kill + respawn when the worker dies or
    its heartbeat goes stale; ``-> DOWN`` when the restart budget is
    exhausted (degraded, partial-coverage serving); ``DOWN -> STARTING``
    only through an explicit :meth:`ShardSupervisor.revive`.
    """

    STARTING = "starting"
    UP = "up"
    DOWN = "down"


@dataclasses.dataclass
class WorkerHandle:
    """Book-keeping for one shard's worker process."""

    index: int
    spec: ShardSpec
    state: ShardState = ShardState.STARTING
    process: Optional[multiprocessing.process.BaseProcess] = None
    request_queue: object = None
    generation: int = 0
    restarts: int = 0


class ShardSupervisor:
    """Spawn, watch, kill, respawn: the fleet's robustness layer."""

    def __init__(
        self,
        specs: List[ShardSpec],
        reply_queue,
        config: FleetConfig,
        log: FleetLog,
        *,
        faults: Optional[FaultPlan] = None,
        context=None,
    ) -> None:
        self._config = config
        self._log = log
        self._faults = faults
        self._ctx = context or multiprocessing.get_context(config.start_method)
        self._reply_queue = reply_queue
        self._heartbeat = self._ctx.Array("d", len(specs), lock=False)
        self._handles: List[WorkerHandle] = [
            WorkerHandle(index=i, spec=spec,
                         request_queue=self._ctx.Queue())
            for i, spec in enumerate(specs)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def handles(self) -> List[WorkerHandle]:
        return list(self._handles)

    def up_handles(self) -> List[WorkerHandle]:
        """Shards currently attached and serving."""
        return [h for h in self._handles if h.state is ShardState.UP]

    def states(self) -> Dict[int, str]:
        """``shard index -> state value`` snapshot."""
        return {h.index: h.state.value for h in self._handles}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker (states land in ``STARTING``)."""
        for handle in self._handles:
            self._spawn(handle)

    def _spawn(self, handle: WorkerHandle) -> None:
        # Stamp the slot *before* the child runs so a worker that dies
        # during attach is judged by spawn time, not leftover garbage.
        self._heartbeat[handle.index] = time.monotonic()
        handle.process = self._ctx.Process(
            target=shard_worker_main,
            args=(handle.index, handle.generation, handle.spec,
                  handle.request_queue, self._reply_queue, self._heartbeat,
                  self._config.heartbeat_interval, self._faults),
            daemon=True,
            name=f"repro-shard-{handle.index}",
        )
        handle.state = ShardState.STARTING
        handle.process.start()
        self._log.record(
            FleetOutcome.WORKER_SPAWNED, shard=handle.index,
            generation=handle.generation,
            detail=f"pid {handle.process.pid}",
        )

    def mark_attached(self, worker_index: int, generation: int) -> None:
        """Handle an attach acknowledgement routed in by the dispatcher."""
        handle = self._handles[worker_index]
        if generation != handle.generation:
            return  # stale ack from a kill-raced predecessor
        was_restart = handle.restarts > 0
        handle.state = ShardState.UP
        self._log.record(
            FleetOutcome.WORKER_ATTACHED, shard=handle.index,
            generation=generation,
        )
        if was_restart:
            self._log.record(
                FleetOutcome.SHARD_RECOVERED, shard=handle.index,
                generation=generation,
                detail=f"serving again after {handle.restarts} restart(s)",
            )

    def ensure_alive(self, now: Optional[float] = None) -> None:
        """Detect dead/hung workers; kill and respawn within budget."""
        now = time.monotonic() if now is None else now
        for handle in self._handles:
            if handle.state is ShardState.DOWN or handle.process is None:
                continue
            alive = handle.process.is_alive()
            stale = (
                now - self._heartbeat[handle.index]
                > self._config.heartbeat_timeout
            )
            if alive and not stale:
                continue
            if alive:
                self._log.record(
                    FleetOutcome.WORKER_HUNG, shard=handle.index,
                    generation=handle.generation,
                    detail=(
                        "heartbeat stale by "
                        f"{now - self._heartbeat[handle.index]:.2f}s; killing"
                    ),
                )
            else:
                self._log.record(
                    FleetOutcome.WORKER_CRASHED, shard=handle.index,
                    generation=handle.generation,
                    detail=f"exit code {handle.process.exitcode}",
                )
            self._kill(handle)
            self._restart(handle)

    def _kill(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - stuck in a syscall
                process.kill()
                process.join(timeout=1.0)
        else:
            process.join(timeout=1.0)

    def _restart(self, handle: WorkerHandle) -> None:
        if handle.restarts >= self._config.max_restarts:
            handle.state = ShardState.DOWN
            self._log.record(
                FleetOutcome.SHARD_DOWN, shard=handle.index,
                generation=handle.generation,
                detail=(
                    f"restart budget ({self._config.max_restarts}) "
                    "exhausted; serving degraded"
                ),
            )
            return
        delay = self._config.restart_policy.delay(
            handle.restarts, key=handle.index
        )
        if delay > 0:
            time.sleep(delay)
        handle.restarts += 1
        handle.generation += 1
        self._spawn(handle)
        self._log.record(
            FleetOutcome.WORKER_RESTARTED, shard=handle.index,
            generation=handle.generation,
            detail=f"restart {handle.restarts} after {delay:.3f}s backoff",
        )

    def revive(self) -> List[int]:
        """Operator action: reset DOWN shards' budgets and respawn them."""
        revived = []
        for handle in self._handles:
            if handle.state is ShardState.DOWN:
                handle.restarts = 0
                handle.generation += 1
                self._spawn(handle)
                revived.append(handle.index)
        return revived

    def reattach(self, specs: List[ShardSpec]) -> None:
        """Point every live worker at fresh segments (re-layout)."""
        if len(specs) != len(self._handles):
            raise ValueError(
                f"re-layout changed the shard count: {len(specs)} specs "
                f"for {len(self._handles)} workers"
            )
        for handle, spec in zip(self._handles, specs):
            handle.spec = spec
            if handle.state is ShardState.UP:
                handle.state = ShardState.STARTING
                handle.request_queue.put(("attach", spec))

    def stop(self) -> None:
        """Shut the pool down: polite stop, then terminate stragglers."""
        for handle in self._handles:
            if handle.process is not None and handle.process.is_alive():
                try:
                    handle.request_queue.put(("stop",))
                except Exception:  # pragma: no cover - queue torn down
                    pass
        deadline = time.monotonic() + 2.0
        for handle in self._handles:
            if handle.process is None:
                continue
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        for handle in self._handles:
            queue = handle.request_queue
            if queue is not None:
                queue.close()
                queue.cancel_join_thread()

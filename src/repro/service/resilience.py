"""Per-chip resilience primitives: circuit breaker and rate limiter.

Both are plain state machines over an injectable monotonic clock, so
the serving tests and the traffic simulator drive them with a virtual
clock and stay fully deterministic; production code leaves the default
(:func:`time.monotonic`).

The breaker shields the *service* from flaky devices (fail fast instead
of burning challenge budget and latency on a chip whose radio is down);
the limiter shields the *protocol* from adversaries (a brute-force or
chosen-challenge prober is throttled, and a streak of rejections locks
the identity out entirely -- see Sayadi et al., arXiv:2312.01256, on why
unthrottled authentication attempts leak).
"""

from __future__ import annotations

import enum
import time
from collections import deque
from typing import Callable, Deque, List, Tuple

__all__ = ["BreakerState", "CircuitBreaker", "RateLimiter"]

Clock = Callable[[], float]


class BreakerState(str, enum.Enum):
    """Classic three-state circuit-breaker taxonomy."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed -> open after consecutive failures -> half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failed requests that trip the breaker open.
    cooldown:
        Seconds the breaker stays open before admitting a probe.
    clock:
        Monotonic time source (injectable for deterministic tests).

    While **closed**, every request is admitted; a success clears the
    failure streak.  After *failure_threshold* consecutive failures the
    breaker **opens** and requests fast-fail without touching the device
    (or the challenge pool).  Once *cooldown* has elapsed, the next
    request is admitted as a **half-open** probe: success closes the
    breaker, failure re-opens it for another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._transitions: List[Tuple[float, str, str]] = []

    @property
    def state(self) -> BreakerState:
        """Current state (open flips to half-open lazily, in :meth:`allow`)."""
        return self._state

    @property
    def transitions(self) -> List[Tuple[float, str, str]]:
        """``(time, from, to)`` state changes, for reliability reports."""
        return list(self._transitions)

    def _move(self, state: BreakerState) -> None:
        if state is self._state:
            return
        self._transitions.append((self._clock(), self._state.value, state.value))
        self._state = state

    def allow(self) -> bool:
        """Whether the next request may proceed to the device."""
        if self._state is BreakerState.OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self._move(BreakerState.HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        """A request completed a session (approved or cleanly rejected)."""
        self._consecutive_failures = 0
        if self._state is not BreakerState.CLOSED:
            self._move(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """A request exhausted its device-read attempts."""
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self._opened_at = self._clock()
            self._move(BreakerState.OPEN)
        elif (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self._move(BreakerState.OPEN)


class RateLimiter:
    """Sliding-window throttle plus a consecutive-reject lockout.

    Parameters
    ----------
    max_requests:
        Admitted requests per *window* seconds (0 disables throttling).
    window:
        Throttle window length in seconds.
    lockout_threshold:
        Consecutive rejections that trigger a lockout (0 disables).
    lockout_seconds:
        Lockout duration.
    clock:
        Monotonic time source.

    The throttle bounds how fast *anyone* -- genuine device or
    chosen-challenge prober -- can pull transcripts for one identity;
    the lockout reacts to the signature of a brute-force attempt (a
    streak of zero-HD failures) by refusing the identity outright for a
    cooling period.
    """

    def __init__(
        self,
        max_requests: int = 30,
        window: float = 60.0,
        lockout_threshold: int = 5,
        lockout_seconds: float = 120.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if max_requests < 0:
            raise ValueError(f"max_requests must be >= 0, got {max_requests}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if lockout_threshold < 0:
            raise ValueError(
                f"lockout_threshold must be >= 0, got {lockout_threshold}"
            )
        if lockout_seconds < 0:
            raise ValueError(
                f"lockout_seconds must be >= 0, got {lockout_seconds}"
            )
        self.max_requests = max_requests
        self.window = window
        self.lockout_threshold = lockout_threshold
        self.lockout_seconds = lockout_seconds
        self._clock = clock
        self._admitted: Deque[float] = deque()
        self._consecutive_rejects = 0
        self._locked_until = 0.0

    @property
    def locked_out(self) -> bool:
        """Whether the identity is currently inside a reject lockout."""
        return self._clock() < self._locked_until

    def _prune(self, now: float) -> None:
        while self._admitted and now - self._admitted[0] >= self.window:
            self._admitted.popleft()

    def allow(self) -> bool:
        """Whether the next request may be admitted (does not consume)."""
        now = self._clock()
        if now < self._locked_until:
            return False
        if self.max_requests == 0:
            return True
        self._prune(now)
        return len(self._admitted) < self.max_requests

    def record_admitted(self) -> None:
        """Consume one throttle slot for an admitted request."""
        self._admitted.append(self._clock())

    def record_rejected(self) -> None:
        """A scored session was rejected; may arm the lockout."""
        self._consecutive_rejects += 1
        if (
            self.lockout_threshold
            and self._consecutive_rejects >= self.lockout_threshold
        ):
            self._locked_until = self._clock() + self.lockout_seconds
            self._consecutive_rejects = 0

    def record_approved(self) -> None:
        """A scored session was approved; clears the reject streak."""
        self._consecutive_rejects = 0

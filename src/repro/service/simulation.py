"""The ``serve-sim`` traffic replay: drifting V/T, faults, reliability report.

This module closes the loop on the resilient serving path: it stands up
a small drift-sensitive chip lot, enrolls it at nominal, then replays a
round-robin authentication trace through :class:`AuthenticationService`
while the (server-invisible) operating condition walks a
nominal -> ramp -> corner -> return schedule and an injected fault plan
makes one chip's radio persistently flaky.  The output is a
machine-readable reliability report: per-phase availability and
false-reject rate, the circuit-breaker transition trace, the
degradation-ladder walk of every chip, budget accounting, and the
audit-log-verified no-replay check.

Everything is deterministic: the lot, the enrollment, the selection
streams, the fault schedule and the virtual service clock all derive
from the one ``seed``, so a report is exactly reproducible.

The numbers behind the default physics (XOR-4, 32 stages,
``voltage_sensitivity=1.75``, ``temperature_sensitivity=0.007``): at
the 0.8 V / 60 degC corner a nominal-enrolled chip false-rejects about
two thirds of its zero-HD sessions one-shot, majority voting barely
helps (the corner flips are deterministic drift, not noise), while the
rung-2 re-tightened selector (``beta0 x0.30``, ``beta1 x2.0``) plus the
k-shot vote push the corner session FRR back to ~0% -- which is exactly
the ladder the drift monitor is supposed to discover on its own.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.server import AuthenticationServer
from repro.faults import FaultPlan, FaultSpec, FlakyResponder, Site
from repro.service.drift import DriftPolicy
from repro.service.events import AuthOutcome
from repro.service.service import AuthenticationService, ServiceConfig
from repro.silicon.chip import fabricate_lot
from repro.silicon.environment import (
    NOMINAL_CONDITION,
    EnvironmentModel,
    OperatingCondition,
)
from repro.utils.rng import SeedLike, derive_generator
from repro.utils.validation import check_positive_int

__all__ = ["SimReport", "VirtualClock", "drift_schedule", "run_serve_sim"]

#: The harsh V/T corner of the paper's sweep (0.8 V, 60 degC).
CORNER_CONDITION = OperatingCondition(voltage=0.8, temperature=60.0)


class VirtualClock:
    """A monotonic clock the simulation advances by hand.

    Injected into :class:`AuthenticationService` so breaker cooldowns,
    rate-limiter windows and deadlines play out deterministically: one
    simulated request = one tick, independent of host speed.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time ({seconds})")
        self._now += float(seconds)
        return self._now


def drift_schedule(
    nominal_steps: int = 80,
    ramp_steps: int = 150,
    corner_steps: int = 80,
    return_steps: int = 80,
    *,
    start: OperatingCondition = NOMINAL_CONDITION,
    corner: OperatingCondition = CORNER_CONDITION,
    ramp_shape: float = 1.0,
) -> List[Tuple[str, OperatingCondition]]:
    """Build the per-request (phase, condition) trace of the simulation.

    Four phases: a *nominal* plateau (the deployment's honeymoon), a
    V/T *ramp* toward the corner (where the drift monitor should do its
    escalation work), a *corner* plateau (where availability is
    measured), and a *return* to nominal (where the recovery hysteresis
    should eventually walk the ladder back down).

    ``ramp_shape`` is the exponent of the ramp's progress curve
    (``frac = (i / ramp_steps) ** ramp_shape``): 1.0 is linear, values
    below 1.0 move toward the corner quickly and then *dwell* near it
    -- which gives mildly drifting chips enough sessions in the
    high-FRR zone to finish their ladder walk before the corner
    plateau starts.

    Returns a list with one ``(phase_name, condition)`` entry per
    authentication request, ``nominal_steps + ramp_steps + corner_steps
    + return_steps`` long.
    """
    for name, value in [
        ("nominal_steps", nominal_steps),
        ("ramp_steps", ramp_steps),
        ("corner_steps", corner_steps),
        ("return_steps", return_steps),
    ]:
        check_positive_int(value, name)
    if ramp_shape <= 0:
        raise ValueError(f"ramp_shape must be positive, got {ramp_shape}")
    trace: List[Tuple[str, OperatingCondition]] = []
    trace.extend(("nominal", start) for _ in range(nominal_steps))
    for i in range(1, ramp_steps + 1):
        frac = (i / ramp_steps) ** ramp_shape
        trace.append(
            (
                "ramp",
                OperatingCondition(
                    voltage=start.voltage + frac * (corner.voltage - start.voltage),
                    temperature=start.temperature
                    + frac * (corner.temperature - start.temperature),
                ),
            )
        )
    trace.extend(("corner", corner) for _ in range(corner_steps))
    trace.extend(("return", start) for _ in range(return_steps))
    return trace


@dataclasses.dataclass(frozen=True)
class SimReport:
    """Reliability report of one ``serve-sim`` run.

    Attributes
    ----------
    n_requests / n_chips:
        Trace length and fleet size.
    outcome_counts:
        Decision-outcome histogram over the whole trace.
    phases:
        Per-phase metrics over the *healthy* (non-faulted) chips:
        request/approval/rejection/denial counts, ``availability``
        (approved / all requests) and ``frr``
        (rejected / scored sessions).
    nominal_frr / corner_availability:
        The two headline numbers the acceptance criteria bound.
    breaker_transitions:
        ``(virtual_time, from_state, to_state)`` trace of the faulted
        chip's circuit breaker (empty when no fault was injected).
    breaker_opened / breaker_recovered:
        Whether the faulted chip's breaker ever opened, and whether it
        closed again afterwards.
    rung_moves:
        Per-chip degradation-ladder moves ``(from_rung, to_rung)``.
    final_rungs:
        Ladder rung of each chip at the end of the trace.
    flagged_chips:
        Chips flagged for operator threshold re-tightening.
    no_replay:
        ``True`` iff the audit log shows every issued challenge digest
        exactly once per chip (the protocol invariant).
    budget:
        Per-chip ``{spent, remaining}`` challenge-pool accounting.
    feature_cache:
        Hit/miss/eviction snapshot of the server's shared parity-feature
        cache (:attr:`~repro.core.server.AuthenticationServer.feature_cache_stats`)
        -- how much transform work the run actually skipped.
    budget_warnings:
        Low-water warnings the service raised.
    latency_mean / latency_p95 / latency_max:
        Wall-clock seconds per request (host-dependent; the service's
        own latencies use the virtual clock).
    wall_seconds:
        Total wall time of the replay.
    params:
        The knobs the run used (for reproduction).
    """

    n_requests: int
    n_chips: int
    outcome_counts: Dict[str, int]
    phases: Dict[str, Dict[str, float]]
    nominal_frr: float
    corner_availability: float
    breaker_transitions: List[Tuple[float, str, str]]
    breaker_opened: bool
    breaker_recovered: bool
    rung_moves: Dict[str, List[Tuple[int, int]]]
    final_rungs: Dict[str, int]
    flagged_chips: List[str]
    no_replay: bool
    budget: Dict[str, Dict[str, int]]
    budget_warnings: List[str]
    latency_mean: float
    latency_p95: float
    latency_max: float
    wall_seconds: float
    params: Dict[str, object]
    feature_cache: Dict[str, float] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary form."""
        return dataclasses.asdict(self)

    def save(self, path) -> Path:
        """Write the report as indented JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def _phase_metrics(rows: List[Tuple[str, str, AuthOutcome]]) -> Dict[str, Dict[str, float]]:
    """Aggregate (phase, chip, outcome) rows into per-phase metrics."""
    metrics: Dict[str, Dict[str, float]] = {}
    for phase in {phase for phase, _, _ in rows}:
        outcomes = [outcome for p, _, outcome in rows if p == phase]
        approved = sum(1 for o in outcomes if o is AuthOutcome.APPROVED)
        rejected = sum(1 for o in outcomes if o is AuthOutcome.REJECTED)
        scored = approved + rejected
        denied = len(outcomes) - scored
        metrics[phase] = {
            "requests": len(outcomes),
            "approved": approved,
            "rejected": rejected,
            "denied": denied,
            "availability": approved / len(outcomes) if outcomes else float("nan"),
            "frr": rejected / scored if scored else float("nan"),
        }
    return metrics


def run_serve_sim(
    *,
    n_chips: int = 5,
    n_xors: int = 4,
    n_stages: int = 32,
    seed: SeedLike = 5,
    nominal_steps: int = 80,
    ramp_steps: int = 150,
    corner_steps: int = 80,
    return_steps: int = 80,
    corner: OperatingCondition = CORNER_CONDITION,
    ramp_shape: float = 0.6,
    voltage_sensitivity: float = 1.75,
    temperature_sensitivity: float = 0.007,
    fault_chip: Optional[int] = 0,
    fault_failed_reads: int = 12,
    n_enroll_challenges: int = 1500,
    n_validation_challenges: int = 6000,
    config: Optional[ServiceConfig] = None,
    tick_seconds: float = 1.0,
    clients: int = 0,
    frontend_config=None,
    report_path=None,
    audit_path=None,
    progress: Optional[Callable[[str], None]] = None,
) -> SimReport:
    """Replay a simulated authentication trace and report reliability.

    Parameters
    ----------
    n_chips / n_xors / n_stages:
        Fleet geometry (XOR-4 over 32 stages by default -- small enough
        to re-run in tests, drifty enough to exercise the ladder).
    seed:
        Root seed; fabrication, enrollment, selection streams and the
        schedule all derive from it.
    nominal_steps / ramp_steps / corner_steps / return_steps:
        Phase lengths of :func:`drift_schedule`; one step = one request,
        served round-robin across the fleet.
    voltage_sensitivity / temperature_sensitivity:
        The lot's :class:`EnvironmentModel` drift sensitivities.  The
        defaults produce a fleet whose *corner* one-shot session FRR is
        ~60-70% -- hostile enough that only the full degradation ladder
        keeps the corner phase available.
    fault_chip:
        Index of the chip whose device reads fail (``None`` disables
        fault injection).
    fault_failed_reads:
        How many of that chip's first device reads fail.  The default
        (12) is tuned so the breaker opens, a first half-open probe
        fails (re-opening it), and a later probe succeeds -- the full
        closed -> open -> half-open -> open -> half-open -> closed arc.
    config:
        Service knobs; ``None`` uses a simulation default tuned for the
        drifting trace (fast ladder escalation, full-window recovery,
        generous genuine-traffic lockout threshold, and a challenge
        pool sized so the low-water warning fires near the end).
    tick_seconds:
        Virtual-clock advance per request.
    clients:
        0 (default) serves the trace sequentially, one
        :meth:`AuthenticationService.authenticate` call per request.
        Positive values replay the same trace through a
        :class:`~repro.service.frontend.BatchingFrontend` with real
        concurrency: up to *clients* requests are in flight at once
        (submitted as futures in schedule order), so the coalescing
        loop serves them in packed batches.  Per-chip request order is
        preserved by the front end's queue, and the virtual clock
        advances ``tick_seconds`` per request (a wave at a time), so
        the acceptance gates -- FRR, availability, no-replay -- hold
        exactly as in sequential mode.
    frontend_config:
        Optional :class:`~repro.service.frontend.FrontendConfig` for
        the *clients* mode (defaults to ``max_batch=clients``).
    report_path / audit_path:
        Optional output files (reliability JSON, audit JSONL).
    progress:
        Optional callback for human-readable progress lines.

    Returns
    -------
    SimReport
        The reliability report (also written to *report_path* if given).
    """
    check_positive_int(n_chips, "n_chips")
    check_positive_int(fault_failed_reads, "fault_failed_reads")
    if clients < 0:
        raise ValueError(f"clients must be >= 0, got {clients}")
    if fault_chip is not None and not 0 <= fault_chip < n_chips:
        raise ValueError(
            f"fault_chip must be in [0, {n_chips}), got {fault_chip}"
        )

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    t0 = time.perf_counter()
    schedule = drift_schedule(
        nominal_steps,
        ramp_steps,
        corner_steps,
        return_steps,
        corner=corner,
        ramp_shape=ramp_shape,
    )

    # ------------------------------------------------------------------
    # Fleet: a drift-sensitive lot, enrolled at nominal.
    # ------------------------------------------------------------------
    environment = EnvironmentModel(
        voltage_sensitivity=voltage_sensitivity,
        temperature_sensitivity=temperature_sensitivity,
    )
    lot_seed = int(derive_generator(seed, "serve-sim", "lot").integers(2**31))
    chips = fabricate_lot(
        n_chips, n_xors, n_stages, seed=lot_seed, environment=environment
    )
    say(f"fabricated {n_chips} XOR-{n_xors} chips (lot seed {lot_seed})")

    server = AuthenticationServer()
    for i, chip in enumerate(chips):
        server.enroll(
            chip,
            seed=int(derive_generator(seed, "serve-sim", "enroll", i).integers(2**31)),
            n_enroll_challenges=n_enroll_challenges,
            n_validation_challenges=n_validation_challenges,
        )
    say(f"enrolled {n_chips} chips at {NOMINAL_CONDITION}")

    # ------------------------------------------------------------------
    # Service: virtual clock, sim-tuned config, injected fault.
    # ------------------------------------------------------------------
    if config is None:
        requests_per_chip = len(schedule) // n_chips + 1
        config = ServiceConfig(
            breaker_failure_threshold=3,
            breaker_cooldown=25.0 * tick_seconds,
            max_requests_per_window=0,  # genuine round-robin traffic
            lockout_threshold=10,  # ladder transients are not attacks
            lockout_seconds=60.0 * tick_seconds,
            # A genuine chip under zero-HD should essentially never
            # reject, so a single reject in the window is treated as
            # drift signal (1/12 > 0.08) -- that makes the whole ladder
            # walk complete inside the V/T ramp.  Recovery waits for 32
            # straight approvals so the re-tightened rung is held
            # through the corner plateau instead of oscillating.
            drift=DriftPolicy(
                window=12, min_samples=1, escalate_frr=0.08, recover_clean=32
            ),
            # The lot's validated rung-2 operating point: strong enough
            # to zero the corner FRR together with the 5-shot vote,
            # mild enough that selection stays interactive.
            retighten_beta0=0.30,
            retighten_beta1=2.0,
            # Size the pool so healthy chips cross the low-water mark in
            # the return phase (demonstrating the warning) but never
            # exhaust it.
            pool_capacity=int(requests_per_chip * 64 * 1.08),
        )
    clock = VirtualClock()
    responders = list(chips)
    fault_chip_id: Optional[str] = None
    if fault_chip is not None:
        fault_chip_id = chips[fault_chip].chip_id
        plan = FaultPlan(
            [
                FaultSpec(
                    Site.DEVICE_READ,
                    kind="device",
                    fail_attempts=fault_failed_reads,
                )
            ]
        )
        responders[fault_chip] = FlakyResponder(chips[fault_chip], plan)
        say(
            f"injecting {fault_failed_reads} failed device reads on "
            f"{fault_chip_id}"
        )
    service = AuthenticationService(server, config, seed=seed, clock=clock)

    # ------------------------------------------------------------------
    # Replay.
    # ------------------------------------------------------------------
    rows: List[Tuple[str, str, AuthOutcome]] = []
    latencies: List[float] = []
    outcome_counts: Dict[str, int] = {}
    frontend_stats: Optional[Dict[str, object]] = None

    def account(step: int, phase: str, condition, result) -> None:
        rows.append((phase, result.chip_id, result.outcome))
        outcome_counts[result.outcome.value] = (
            outcome_counts.get(result.outcome.value, 0) + 1
        )
        if progress is not None and (step + 1) % 50 == 0:
            say(
                f"  step {step + 1}/{len(schedule)} ({phase} at {condition}): "
                f"{result.outcome.value}"
            )

    if clients:
        from repro.service.frontend import BatchingFrontend, FrontendConfig

        fe_config = frontend_config or FrontendConfig(
            max_batch=clients, max_pending=max(4 * clients, 64)
        )
        say(
            f"replaying through the batching front end: {clients} "
            f"concurrent clients, max_batch {fe_config.max_batch}"
        )
        with BatchingFrontend(service, fe_config) as frontend:
            for wave_start in range(0, len(schedule), clients):
                wave = schedule[wave_start:wave_start + clients]
                # One tick per request, advanced up front so the wave's
                # decisions never race the clock.
                clock.advance(tick_seconds * len(wave))
                w0 = time.perf_counter()
                futures = [
                    frontend.submit_authenticate(
                        responders[(wave_start + i) % n_chips],
                        condition=condition,
                    )
                    for i, (_, condition) in enumerate(wave)
                ]
                for i, ((phase, condition), future) in enumerate(
                    zip(wave, futures)
                ):
                    result = future.result()
                    latencies.append(time.perf_counter() - w0)
                    account(wave_start + i, phase, condition, result)
            frontend_stats = frontend.stats
    else:
        for step, (phase, condition) in enumerate(schedule):
            clock.advance(tick_seconds)
            responder = responders[step % n_chips]
            w0 = time.perf_counter()
            result = service.authenticate(responder, condition=condition)
            latencies.append(time.perf_counter() - w0)
            account(step, phase, condition, result)

    # ------------------------------------------------------------------
    # Report.
    # ------------------------------------------------------------------
    healthy_rows = [r for r in rows if r[1] != fault_chip_id]
    phases = _phase_metrics(healthy_rows)
    nominal = phases.get("nominal", {})
    corner_metrics = phases.get("corner", {})

    breaker_transitions: List[Tuple[float, str, str]] = []
    if fault_chip_id is not None:
        breaker = service._chips[fault_chip_id].breaker
        breaker_transitions = list(breaker.transitions)
    opened = any(to == "open" for _, _, to in breaker_transitions)
    recovered = opened and breaker_transitions[-1][2] == "closed"

    rung_moves = {
        chip_id: state.drift.moves
        for chip_id, state in sorted(service._chips.items())
    }
    final_rungs = {
        chip_id: state.drift.rung
        for chip_id, state in sorted(service._chips.items())
    }
    budget = {
        chip_id: {
            "spent": state.budget.spent,
            "remaining": state.budget.remaining,
        }
        for chip_id, state in sorted(service._chips.items())
    }

    latency_array = np.asarray(latencies) if latencies else np.zeros(1)
    report = SimReport(
        n_requests=len(schedule),
        n_chips=n_chips,
        outcome_counts=dict(sorted(outcome_counts.items())),
        phases=phases,
        nominal_frr=float(nominal.get("frr", float("nan"))),
        corner_availability=float(corner_metrics.get("availability", float("nan"))),
        breaker_transitions=breaker_transitions,
        breaker_opened=opened,
        breaker_recovered=recovered,
        rung_moves=rung_moves,
        final_rungs=final_rungs,
        flagged_chips=service.flagged_chips,
        no_replay=not service.audit.replayed_digests(),
        budget=budget,
        budget_warnings=list(service.warnings),
        latency_mean=float(latency_array.mean()),
        latency_p95=float(np.percentile(latency_array, 95)),
        latency_max=float(latency_array.max()),
        wall_seconds=time.perf_counter() - t0,
        params={
            "n_chips": n_chips,
            "n_xors": n_xors,
            "n_stages": n_stages,
            "seed": seed,
            "nominal_steps": nominal_steps,
            "ramp_steps": ramp_steps,
            "corner_steps": corner_steps,
            "return_steps": return_steps,
            "corner": str(corner),
            "ramp_shape": ramp_shape,
            "voltage_sensitivity": voltage_sensitivity,
            "temperature_sensitivity": temperature_sensitivity,
            "fault_chip": fault_chip,
            "fault_failed_reads": fault_failed_reads,
            "tick_seconds": tick_seconds,
            "clients": clients,
            "frontend": frontend_stats,
        },
        feature_cache=service.server.feature_cache_stats,
    )
    if audit_path is not None:
        service.audit.save(audit_path)
        say(f"audit log -> {audit_path}")
    if report_path is not None:
        report.save(report_path)
        say(f"reliability report -> {report_path}")
    cache = report.feature_cache
    say(
        f"feature cache: {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses / "
        f"{cache.get('evictions', 0)} evictions "
        f"(hit rate {cache.get('hit_rate', 0.0):.1%})"
    )
    say(
        f"done: nominal FRR {report.nominal_frr:.1%}, corner availability "
        f"{report.corner_availability:.1%}, breaker "
        f"{'recovered' if report.breaker_recovered else 'did not recover'}, "
        f"no_replay={report.no_replay} ({report.wall_seconds:.1f}s)"
    )
    return report

"""repro.service -- the resilient authentication serving layer.

The online counterpart of the fault-tolerant *offline* campaign runtime
(:mod:`repro.engine.runtime`): where the runtime keeps a
trillion-measurement enrollment campaign alive across worker crashes,
this package keeps the *authentication path* alive across device
flakiness, environmental drift and adversarial probing, without ever
compromising the zero-HD protocol's no-replay invariant.

* :mod:`repro.service.service` -- :class:`AuthenticationService`, the
  supervised front end (deadlines, bounded retries, per-chip circuit
  breaker, rate limiting, budget accounting);
* :mod:`repro.service.frontend` -- :class:`BatchingFrontend`, the
  micro-batching request coalescer: concurrent client threads and
  asyncio coroutines submit into a bounded queue, a batching loop
  drains it into single packed ``authenticate_many`` /
  ``identify_many`` passes (and, with a fleet attached, single
  shard round-trips), bit-identical to sequential serving;
* :mod:`repro.service.drift` -- rolling-FRR drift monitor and the
  graceful-degradation ladder;
* :mod:`repro.service.resilience` -- circuit breaker and rate limiter
  state machines;
* :mod:`repro.service.budget` -- never-used challenge-pool accounting;
* :mod:`repro.service.events` -- structured audit events;
* :mod:`repro.service.simulation` -- the ``serve-sim`` traffic replay
  (drifting V/T schedule, injected faults, reliability report);
* :mod:`repro.service.lifecycle` -- the fleet-lifecycle chaos driver
  (enrollment churn, aging-driven retighten storms, revocation waves,
  persistence chaos, gated acceptance report);
* :mod:`repro.service.fleet` -- the supervised sharded identification
  plane (shared-memory codebook shards, heartbeat supervision,
  degraded partial-coverage serving that survives worker death
  mid-query).
"""

from repro.service.budget import ChallengeBudget, PoolExhaustedError
from repro.service.fleet import (
    FleetConfig,
    FleetIdentificationResult,
    FleetLog,
    FleetOutcome,
    OverloadError,
    ShardDispatcher,
)
from repro.service.drift import DriftMonitor, DriftPolicy, MAX_RUNG
from repro.service.events import AuditLog, AuthEvent, AuthOutcome, challenge_digests
from repro.service.frontend import BatchingFrontend, FrontendConfig
from repro.service.lifecycle import (
    LifecycleConfig,
    LifecycleReport,
    run_lifecycle_sim,
)
from repro.service.resilience import BreakerState, CircuitBreaker, RateLimiter
from repro.service.service import AuthenticationService, ServiceConfig, ServiceResult
from repro.service.simulation import (
    SimReport,
    VirtualClock,
    drift_schedule,
    run_serve_sim,
)

__all__ = [
    "AuditLog",
    "AuthEvent",
    "AuthOutcome",
    "AuthenticationService",
    "BatchingFrontend",
    "BreakerState",
    "ChallengeBudget",
    "CircuitBreaker",
    "DriftMonitor",
    "DriftPolicy",
    "FleetConfig",
    "FleetIdentificationResult",
    "FleetLog",
    "FleetOutcome",
    "FrontendConfig",
    "LifecycleConfig",
    "LifecycleReport",
    "MAX_RUNG",
    "OverloadError",
    "PoolExhaustedError",
    "RateLimiter",
    "ShardDispatcher",
    "ServiceConfig",
    "ServiceResult",
    "SimReport",
    "VirtualClock",
    "challenge_digests",
    "drift_schedule",
    "run_lifecycle_sim",
    "run_serve_sim",
]
